"""Tunable electromagnetic microgenerator block (Section III-A, Eq. 8-13).

The microgenerator is a cantilevered spring-mass system with four magnets
forming the proof mass and a fixed coil.  Its dynamic model is

.. math::

   m \\ddot z + c_p \\dot z + k_s z + F_{em} + F_{t,z} = F_a

with the electromagnetic coupling ``V_{em} = \\Phi \\dot z`` and
``F_{em} = \\Phi i_L`` and the coil branch
``V_m = V_{em} - R_c i_L - L_c \\, di_L/dt``.

State variables: relative displacement ``z``, relative velocity ``v`` and
coil current ``iL``.  Terminal variables: output voltage ``Vm`` and output
current ``Im`` (with ``Im = iL`` as the block's algebraic constraint).

The magnetic tuning mechanism raises the effective stiffness according to
Eq. (12); the microcontroller drives it through the ``tuning_force``
control input.
"""

from __future__ import annotations

import math
from typing import Callable, Sequence

import numpy as np

from ..core.block import (
    AnalogueBlock,
    BatchedLinearisation,
    BlockLinearisation,
    PreparedBlockLineariser,
)
from ..core.errors import ConfigurationError
from .tuning import MagneticTuningModel
from .vibration import batch_acceleration

__all__ = ["MicrogeneratorParameters", "ElectromagneticMicrogenerator"]


class MicrogeneratorParameters:
    """Physical parameters of the electromagnetic microgenerator.

    Parameters
    ----------
    proof_mass_kg:
        Proof mass ``m`` (magnets + cantilever tip).
    parasitic_damping:
        Parasitic (mechanical) damping factor ``c_p`` in N.s/m.
    spring_stiffness:
        Un-tuned effective spring stiffness ``k_s`` in N/m.
    flux_linkage:
        Electromagnetic coupling ``Phi = N B l`` in V.s/m (equivalently N/A).
    coil_resistance:
        Coil series resistance ``R_c`` in ohms.
    coil_inductance:
        Coil inductance ``L_c`` in henries.
    buckling_load_n:
        Cantilever buckling load ``F_b`` used in the tuning law (Eq. 12).
    tuning_force_z_fraction:
        Fraction of the axial tuning force that appears as the parasitic
        z-component ``F_{t,z}`` in the motion equation (small).
    """

    def __init__(
        self,
        proof_mass_kg: float,
        parasitic_damping: float,
        spring_stiffness: float,
        flux_linkage: float,
        coil_resistance: float,
        coil_inductance: float,
        buckling_load_n: float,
        tuning_force_z_fraction: float = 0.01,
    ) -> None:
        if proof_mass_kg <= 0.0:
            raise ConfigurationError("proof mass must be positive")
        if parasitic_damping < 0.0:
            raise ConfigurationError("parasitic damping must be non-negative")
        if spring_stiffness <= 0.0:
            raise ConfigurationError("spring stiffness must be positive")
        if flux_linkage <= 0.0:
            raise ConfigurationError("flux linkage must be positive")
        if coil_resistance <= 0.0:
            raise ConfigurationError("coil resistance must be positive")
        if coil_inductance <= 0.0:
            raise ConfigurationError("coil inductance must be positive")
        if buckling_load_n <= 0.0:
            raise ConfigurationError("buckling load must be positive")
        if not 0.0 <= tuning_force_z_fraction <= 1.0:
            raise ConfigurationError("tuning_force_z_fraction must be in [0, 1]")
        self.proof_mass_kg = proof_mass_kg
        self.parasitic_damping = parasitic_damping
        self.spring_stiffness = spring_stiffness
        self.flux_linkage = flux_linkage
        self.coil_resistance = coil_resistance
        self.coil_inductance = coil_inductance
        self.buckling_load_n = buckling_load_n
        self.tuning_force_z_fraction = tuning_force_z_fraction

    _FIELDS = (
        "proof_mass_kg",
        "parasitic_damping",
        "spring_stiffness",
        "flux_linkage",
        "coil_resistance",
        "coil_inductance",
        "buckling_load_n",
        "tuning_force_z_fraction",
    )

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, MicrogeneratorParameters):
            return NotImplemented
        return all(
            getattr(self, name) == getattr(other, name) for name in self._FIELDS
        )

    def __hash__(self) -> int:
        return hash(tuple(getattr(self, name) for name in self._FIELDS))

    @property
    def untuned_frequency_hz(self) -> float:
        """Un-tuned resonant frequency ``f_r = sqrt(k_s/m) / 2 pi``."""
        return math.sqrt(self.spring_stiffness / self.proof_mass_kg) / (2.0 * math.pi)

    @property
    def quality_factor(self) -> float:
        """Mechanical quality factor ``Q = sqrt(k_s m) / c_p`` (open circuit)."""
        if self.parasitic_damping == 0.0:
            return float("inf")
        return (
            math.sqrt(self.spring_stiffness * self.proof_mass_kg)
            / self.parasitic_damping
        )

    @classmethod
    def from_frequency(
        cls,
        untuned_frequency_hz: float,
        proof_mass_kg: float,
        quality_factor: float,
        flux_linkage: float,
        coil_resistance: float,
        coil_inductance: float,
        buckling_load_n: float,
        tuning_force_z_fraction: float = 0.01,
    ) -> "MicrogeneratorParameters":
        """Build parameters from resonant frequency and Q rather than k_s, c_p."""
        if untuned_frequency_hz <= 0.0:
            raise ConfigurationError("resonant frequency must be positive")
        if quality_factor <= 0.0:
            raise ConfigurationError("quality factor must be positive")
        omega = 2.0 * math.pi * untuned_frequency_hz
        stiffness = proof_mass_kg * omega * omega
        damping = math.sqrt(stiffness * proof_mass_kg) / quality_factor
        return cls(
            proof_mass_kg=proof_mass_kg,
            parasitic_damping=damping,
            spring_stiffness=stiffness,
            flux_linkage=flux_linkage,
            coil_resistance=coil_resistance,
            coil_inductance=coil_inductance,
            buckling_load_n=buckling_load_n,
            tuning_force_z_fraction=tuning_force_z_fraction,
        )


class ElectromagneticMicrogenerator(AnalogueBlock):
    """The tunable electromagnetic microgenerator as an analogue block.

    Parameters
    ----------
    params:
        Physical parameters.
    acceleration:
        Callable ``a(t)`` giving the base acceleration in m/s^2 (usually a
        :class:`~repro.blocks.vibration.VibrationSource`).
    name:
        Block name used for trace labelling.

    Control inputs (written by the digital side):

    * ``"tuning_force"`` — axial magnetic tuning force ``F_t`` in newtons;
      raises the effective stiffness per Eq. (12) and adds the small
      z-component disturbance ``F_{t,z}``.
    """

    def __init__(
        self,
        params: MicrogeneratorParameters,
        acceleration: Callable[[float], float],
        name: str = "generator",
    ) -> None:
        super().__init__(
            name,
            state_names=("z", "velocity", "i_coil"),
            terminal_names=("Vm", "Im"),
            terminal_kinds=("voltage", "current"),
            n_algebraic=1,
        )
        self.params = params
        self._acceleration = acceleration
        self._tuning_force = 0.0

    # ------------------------------------------------------------------ #
    # tuning
    # ------------------------------------------------------------------ #
    @property
    def tuning_force(self) -> float:
        """Currently applied axial tuning force ``F_t`` (N)."""
        return self._tuning_force

    @property
    def effective_stiffness(self) -> float:
        """Tuned stiffness ``k_s (1 + F_t / F_b)`` implied by Eq. (12)."""
        return self.params.spring_stiffness * (
            1.0 + self._tuning_force / self.params.buckling_load_n
        )

    @property
    def resonant_frequency_hz(self) -> float:
        """Current (tuned) resonant frequency ``f_r'`` of Eq. (12)."""
        return math.sqrt(self.effective_stiffness / self.params.proof_mass_kg) / (
            2.0 * math.pi
        )

    def apply_control(self, name: str, value: float) -> None:
        if name == "tuning_force":
            if value < 0.0:
                raise ConfigurationError("tuning force must be non-negative")
            max_force = self.params.buckling_load_n * 10.0
            self._tuning_force = min(float(value), max_force)
            return
        super().apply_control(name, value)

    def make_tuning_model(
        self,
        force_constant: float,
        exponent: float = 4.0,
        min_gap_m: float = 0.5e-3,
        max_gap_m: float = 30e-3,
    ) -> MagneticTuningModel:
        """Convenience constructor for the matching magnetic tuning model."""
        return MagneticTuningModel(
            untuned_frequency_hz=self.params.untuned_frequency_hz,
            buckling_load_n=self.params.buckling_load_n,
            force_constant=force_constant,
            exponent=exponent,
            min_gap_m=min_gap_m,
            max_gap_m=max_gap_m,
        )

    # ------------------------------------------------------------------ #
    # model equations (Eq. 13)
    # ------------------------------------------------------------------ #
    def _matrices(self, t: float):
        p = self.params
        m = p.proof_mass_kg
        jxx = np.array(
            [
                [0.0, 1.0, 0.0],
                [-self.effective_stiffness / m, -p.parasitic_damping / m, -p.flux_linkage / m],
                [0.0, p.flux_linkage / p.coil_inductance, -p.coil_resistance / p.coil_inductance],
            ]
        )
        jxy = np.array(
            [
                [0.0, 0.0],
                [0.0, 0.0],
                [-1.0 / p.coil_inductance, 0.0],
            ]
        )
        f_a = m * float(self._acceleration(t))
        f_tz = p.tuning_force_z_fraction * self._tuning_force
        ex = np.array([0.0, (f_a - f_tz) / m, 0.0])
        return jxx, jxy, ex

    def derivatives(self, t: float, x: np.ndarray, y: np.ndarray) -> np.ndarray:
        jxx, jxy, ex = self._matrices(t)
        return jxx @ x + jxy @ y + ex

    def algebraic_residual(self, t: float, x: np.ndarray, y: np.ndarray) -> np.ndarray:
        # Im (terminal 1) equals the coil current iL (state 2)
        return np.array([y[1] - x[2]])

    def linearise(self, t: float, x: np.ndarray, y: np.ndarray) -> BlockLinearisation:
        jxx, jxy, ex = self._matrices(t)
        jyx = np.array([[0.0, 0.0, -1.0]])
        jyy = np.array([[0.0, 1.0]])
        ey = np.zeros(1)
        return BlockLinearisation(jxx=jxx, jxy=jxy, ex=ex, jyx=jyx, jyy=jyy, ey=ey)

    def linearise_batch(
        self,
        lanes: Sequence[AnalogueBlock],
        t: float,
        x: np.ndarray,
        y: np.ndarray,
    ) -> BatchedLinearisation:
        """Vectorised Eq. (13) Jacobians for ``B`` lanes of generators.

        The model is state-affine, so the Jacobian entries are per-lane
        parameter expressions evaluated element-wise — bit-identical to the
        scalar :meth:`linearise`.  Only the base acceleration goes through
        the lanes' scalar sources (libm ``sin``) so the excitation matches
        each lane's serial run exactly.
        """
        b = len(lanes)
        m = np.array([lane.params.proof_mass_kg for lane in lanes])
        stiffness = np.array([lane.effective_stiffness for lane in lanes])
        damping = np.array([lane.params.parasitic_damping for lane in lanes])
        flux = np.array([lane.params.flux_linkage for lane in lanes])
        l_coil = np.array([lane.params.coil_inductance for lane in lanes])
        r_coil = np.array([lane.params.coil_resistance for lane in lanes])

        jxx = np.zeros((b, 3, 3))
        jxx[:, 0, 1] = 1.0
        jxx[:, 1, 0] = -stiffness / m
        jxx[:, 1, 1] = -damping / m
        jxx[:, 1, 2] = -flux / m
        jxx[:, 2, 1] = flux / l_coil
        jxx[:, 2, 2] = -r_coil / l_coil

        jxy = np.zeros((b, 3, 2))
        jxy[:, 2, 0] = -1.0 / l_coil

        f_a = m * batch_acceleration([lane._acceleration for lane in lanes], t)
        f_tz = np.array(
            [lane.params.tuning_force_z_fraction * lane._tuning_force for lane in lanes]
        )
        ex = np.zeros((b, 3))
        ex[:, 1] = (f_a - f_tz) / m

        jyx = np.zeros((b, 1, 3))
        jyx[:, 0, 2] = -1.0
        jyy = np.zeros((b, 1, 2))
        jyy[:, 0, 1] = 1.0
        return BatchedLinearisation(
            jxx=jxx, jxy=jxy, ex=ex, jyx=jyx, jyy=jyy, ey=np.zeros((b, 1))
        )

    def batched_lineariser(self, lanes: Sequence[AnalogueBlock]) -> PreparedBlockLineariser:
        """Fast lineariser with the Jacobians hoisted out of the refresh loop.

        During a batched march the tuning force and all physical
        parameters are pinned (lanes are controller-free), so every
        Jacobian block of Eq. (13) is lane-constant; only the excitation
        row ``ex[:, 1]`` depends on ``t`` through the base acceleration.
        The per-call work reduces to the scalar acceleration sources (kept
        on libm ``sin`` for byte-identity) plus one vector expression that
        matches :meth:`linearise_batch` operation-for-operation.
        """
        b = len(lanes)
        m = np.array([lane.params.proof_mass_kg for lane in lanes])
        f_tz = np.array(
            [lane.params.tuning_force_z_fraction * lane._tuning_force for lane in lanes]
        )
        accelerations = [lane._acceleration for lane in lanes]
        # static fields, computed through linearise_batch so the values are
        # the same IEEE-754 expressions as the unprepared path
        static = self.linearise_batch(
            lanes, 0.0, np.zeros((b, 3)), np.zeros((b, 2))
        )
        jxx, jxy, jyx, jyy, ey = static.jxx, static.jxy, static.jyx, static.jyy, static.ey

        def lineariser(t: float, x: np.ndarray, y: np.ndarray) -> BatchedLinearisation:
            f_a = m * batch_acceleration(accelerations, t)
            ex = np.zeros((b, 3))
            ex[:, 1] = (f_a - f_tz) / m
            return BatchedLinearisation(
                jxx=jxx, jxy=jxy, ex=ex, jyx=jyx, jyy=jyy, ey=ey
            )

        return PreparedBlockLineariser(
            lineariser=lineariser,
            constant=("jxx", "jxy", "jyx", "jyy", "ey"),
        )

    # ------------------------------------------------------------------ #
    # derived quantities used by probes and the analysis layer
    # ------------------------------------------------------------------ #
    def electromagnetic_voltage(self, velocity: float) -> float:
        """Open-circuit EMF ``V_em = Phi * dz/dt`` (Eq. 9)."""
        return self.params.flux_linkage * velocity

    def electromagnetic_force(self, coil_current: float) -> float:
        """Reaction force ``F_em = Phi * iL`` (Eq. 11)."""
        return self.params.flux_linkage * coil_current

    def output_power(self, vm: float, im: float) -> float:
        """Instantaneous electrical power delivered at the terminals."""
        return vm * im
