"""Supercapacitor (three-branch Zubieta model) with equivalent load resistor.

Section III-C of the paper adopts the Zubieta-Bonert double-layer
capacitor model: three parallel RC branches — the *immediate* branch
(``Ri``, ``Ci``), the *delayed* branch (``Rd``, ``Cd``) and the
*long-term* branch (``Rl``, ``Cl``) — which together capture the charge
redistribution inside the supercapacitor over three time scales.  The
equivalent load resistor ``Req`` representing the microcontroller and
actuator consumption sits directly across the terminals (Fig. 6), and an
optional leakage resistance models the self-discharge the paper cites as a
source of simulation/measurement discrepancy.

State variables: the three internal capacitor voltages ``Vi``, ``Vd``,
``Vl``.  Terminal variables: the terminal voltage ``Vc`` and the current
``Ic`` delivered by the power-processing circuit.  The block's algebraic
constraint is the terminal KCL.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

import numpy as np

from ..core.block import (
    AnalogueBlock,
    BatchedLinearisation,
    BlockLinearisation,
    PreparedBlockLineariser,
)
from ..core.errors import ConfigurationError
from .load import LoadProfile, OperatingMode

__all__ = ["SupercapacitorParameters", "Supercapacitor"]


@dataclass(frozen=True)
class SupercapacitorParameters:
    """Three-branch Zubieta model parameters.

    The immediate-branch capacitance is ``Ci0 + Ci1`` as in Eq. (15) of the
    paper (the voltage-dependent part ``Ci1 * Vi`` is lumped into a constant
    around the operating voltage, exactly as the paper's state matrix does).
    """

    immediate_resistance_ohm: float = 2.5
    immediate_capacitance_f: float = 0.9
    delayed_resistance_ohm: float = 90.0
    delayed_capacitance_f: float = 0.18
    longterm_resistance_ohm: float = 900.0
    longterm_capacitance_f: float = 0.12
    leakage_resistance_ohm: Optional[float] = None

    def __post_init__(self) -> None:
        values = (
            ("immediate_resistance_ohm", self.immediate_resistance_ohm),
            ("immediate_capacitance_f", self.immediate_capacitance_f),
            ("delayed_resistance_ohm", self.delayed_resistance_ohm),
            ("delayed_capacitance_f", self.delayed_capacitance_f),
            ("longterm_resistance_ohm", self.longterm_resistance_ohm),
            ("longterm_capacitance_f", self.longterm_capacitance_f),
        )
        for label, value in values:
            if value <= 0.0:
                raise ConfigurationError(f"{label} must be positive, got {value}")
        if self.leakage_resistance_ohm is not None and self.leakage_resistance_ohm <= 0.0:
            raise ConfigurationError("leakage resistance must be positive when given")

    @property
    def total_capacitance_f(self) -> float:
        """Sum of the three branch capacitances (long-time-scale value)."""
        return (
            self.immediate_capacitance_f
            + self.delayed_capacitance_f
            + self.longterm_capacitance_f
        )


class Supercapacitor(AnalogueBlock):
    """Zubieta three-branch supercapacitor plus equivalent load (Fig. 6).

    Control inputs (written by the digital side):

    * ``"load_resistance"`` — equivalent load resistance ``Req`` in ohms
      (the microcontroller switches it between the Eq. 16 values).
    """

    def __init__(
        self,
        params: SupercapacitorParameters = SupercapacitorParameters(),
        load_profile: LoadProfile = LoadProfile(),
        initial_voltage_v: float = 0.0,
        name: str = "storage",
    ) -> None:
        super().__init__(
            name,
            state_names=("Vi", "Vd", "Vl"),
            terminal_names=("Vc", "Ic"),
            terminal_kinds=("voltage", "current"),
            n_algebraic=1,
        )
        if initial_voltage_v < 0.0:
            raise ConfigurationError("initial supercapacitor voltage must be >= 0")
        self.params = params
        self.load_profile = load_profile
        self.initial_voltage_v = float(initial_voltage_v)
        self._req = load_profile.resistance(OperatingMode.SLEEP)
        self._mode = OperatingMode.SLEEP

    # ------------------------------------------------------------------ #
    # load control
    # ------------------------------------------------------------------ #
    @property
    def load_resistance(self) -> float:
        """Present equivalent load resistance ``Req``."""
        return self._req

    @property
    def operating_mode(self) -> OperatingMode:
        """Operating mode implied by the last mode-style control write."""
        return self._mode

    def set_mode(self, mode: OperatingMode) -> None:
        """Switch ``Req`` to the value of ``mode`` (Eq. 16)."""
        self._mode = mode
        self._req = self.load_profile.resistance(mode)

    def apply_control(self, name: str, value: float) -> None:
        if name == "load_resistance":
            if value <= 0.0:
                raise ConfigurationError("load resistance must be positive")
            self._req = float(value)
            # keep the mode label roughly in sync for reporting purposes
            closest = min(
                OperatingMode,
                key=lambda mode: abs(self.load_profile.resistance(mode) - self._req),
            )
            self._mode = closest
            return
        super().apply_control(name, value)

    # ------------------------------------------------------------------ #
    # model equations (Eq. 15 plus terminal KCL)
    # ------------------------------------------------------------------ #
    def _branch_conductances(self) -> np.ndarray:
        p = self.params
        return np.array(
            [
                1.0 / p.immediate_resistance_ohm,
                1.0 / p.delayed_resistance_ohm,
                1.0 / p.longterm_resistance_ohm,
            ]
        )

    def _branch_capacitances(self) -> np.ndarray:
        p = self.params
        return np.array(
            [
                p.immediate_capacitance_f,
                p.delayed_capacitance_f,
                p.longterm_capacitance_f,
            ]
        )

    def _shunt_conductance(self) -> float:
        g = 1.0 / self._req
        if self.params.leakage_resistance_ohm is not None:
            g += 1.0 / self.params.leakage_resistance_ohm
        return g

    def derivatives(self, t: float, x: np.ndarray, y: np.ndarray) -> np.ndarray:
        vc = y[0]
        g = self._branch_conductances()
        c = self._branch_capacitances()
        return g * (vc - x) / c

    def algebraic_residual(self, t: float, x: np.ndarray, y: np.ndarray) -> np.ndarray:
        vc, ic = y
        g = self._branch_conductances()
        branch_current = float(np.sum(g * (vc - x)))
        shunt_current = self._shunt_conductance() * vc
        return np.array([ic - branch_current - shunt_current])

    def linearise(self, t: float, x: np.ndarray, y: np.ndarray) -> BlockLinearisation:
        g = self._branch_conductances()
        c = self._branch_capacitances()
        jxx = np.diag(-g / c)
        jxy = np.zeros((3, 2))
        jxy[:, 0] = g / c
        ex = np.zeros(3)
        jyx = (g)[np.newaxis, :].copy()
        jyy = np.array([[-(float(np.sum(g)) + self._shunt_conductance()), 1.0]])
        ey = np.zeros(1)
        return BlockLinearisation(jxx=jxx, jxy=jxy, ex=ex, jyx=jyx, jyy=jyy, ey=ey)

    def linearise_batch(
        self,
        lanes,
        t: float,
        x: np.ndarray,
        y: np.ndarray,
    ) -> BatchedLinearisation:
        """Vectorised Eq. (15) model for ``B`` lanes of supercapacitors.

        The Zubieta model is linear; the stacked Jacobians are per-lane
        parameter expressions (including each lane's present equivalent
        load ``Req``, Eq. 16), element-wise identical to the scalar
        :meth:`linearise`.
        """
        b = len(lanes)
        g = np.stack([lane._branch_conductances() for lane in lanes])
        c = np.stack([lane._branch_capacitances() for lane in lanes])
        ratio = g / c
        jxx = np.zeros((b, 3, 3))
        jxx[:, np.arange(3), np.arange(3)] = -ratio
        jxy = np.zeros((b, 3, 2))
        jxy[:, :, 0] = ratio
        jyx = g[:, None, :].copy()
        jyy = np.zeros((b, 1, 2))
        jyy[:, 0, 0] = -(
            np.array([float(np.sum(lane_g)) for lane_g in g])
            + np.array([lane._shunt_conductance() for lane in lanes])
        )
        jyy[:, 0, 1] = 1.0
        return BatchedLinearisation(
            jxx=jxx, jxy=jxy, ex=np.zeros((b, 3)), jyx=jyx, jyy=jyy, ey=np.zeros((b, 1))
        )

    def batched_lineariser(self, lanes) -> PreparedBlockLineariser:
        """Fully static fast lineariser for the batched refresh path.

        The batched solver pins ``Req`` for the whole march (batched lanes
        are controller-free), so every field of the Eq. (15) model is
        lane-constant: the entire :class:`BatchedLinearisation` is computed
        once here — via :meth:`linearise_batch`, hence bit-identical — and
        reused on every refresh.
        """
        b = len(lanes)
        static = self.linearise_batch(
            lanes, 0.0, np.zeros((b, 3)), np.zeros((b, 2))
        )
        return PreparedBlockLineariser(
            lineariser=lambda t, x, y: static,
            constant=("jxx", "jxy", "ex", "jyx", "jyy", "ey"),
        )

    def initial_state(self) -> np.ndarray:
        return np.full(3, self.initial_voltage_v)

    # ------------------------------------------------------------------ #
    # derived quantities
    # ------------------------------------------------------------------ #
    def stored_energy_j(self, x: Sequence[float]) -> float:
        """Energy stored in the three internal capacitors (J)."""
        c = self._branch_capacitances()
        x = np.asarray(x, dtype=float)
        return float(0.5 * np.sum(c * x * x))

    def terminal_voltage(self, x: Sequence[float], ic: float = 0.0) -> float:
        """Terminal voltage implied by the internal state and input current.

        Solves the terminal KCL for ``Vc`` given ``Ic`` — useful for
        initial-condition computations and post-processing.
        """
        g = self._branch_conductances()
        x = np.asarray(x, dtype=float)
        total_g = float(np.sum(g)) + self._shunt_conductance()
        return float((ic + np.sum(g * x)) / total_g)
