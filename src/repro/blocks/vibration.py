"""Ambient vibration sources.

The microgenerator is excited by the acceleration of its base.  The paper's
scenarios use a sinusoidal ambient vibration whose frequency steps from one
value to another (70 -> 71 Hz in Scenario 1, a 14 Hz shift in Scenario 2);
the tuning controller then re-tunes the harvester to the new frequency.

:class:`VibrationSource` produces the base acceleration ``a(t)`` and exposes
the instantaneous ambient frequency — the quantity a real system would
estimate from the generator waveform and that the microcontroller probe
reads.  Frequency changes preserve phase continuity so that the excitation
waveform has no jump at the switching instant.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable, List, Optional, Sequence, Tuple

import numpy as np

from ..core.errors import ConfigurationError

__all__ = [
    "FrequencyStep",
    "VibrationSource",
    "MultiToneVibrationSource",
    "batch_acceleration",
]


def batch_acceleration(
    sources: Sequence[Callable[[float], float]], t: float
) -> np.ndarray:
    """Base acceleration of ``B`` lane excitations at one shared time point.

    Used by the batched block linearisations: each lane of a batched sweep
    carries its own excitation (its own frequency/amplitude/schedule), and
    the lock-step march needs all of them at the shared time ``t``.
    Deliberately a loop over the scalar sources rather than an
    ``np.sin``-vectorised evaluation: the scalar sources go through libm's
    ``sin``, and NumPy's SIMD ``sin`` is not guaranteed bit-identical to
    it, which would break the batched solver's fixed-step byte-identity
    contract.  At one call per block per accepted step the loop is far off
    the hot path.
    """
    return np.array([float(source(t)) for source in sources])


@dataclass(frozen=True)
class FrequencyStep:
    """A scheduled change of the ambient vibration."""

    time: float
    frequency_hz: float
    amplitude_ms2: Optional[float] = None


class VibrationSource:
    """Single-tone sinusoidal base acceleration with scheduled changes.

    Parameters
    ----------
    frequency_hz:
        Initial ambient frequency.
    amplitude_ms2:
        Acceleration amplitude in m/s^2 (peak).
    steps:
        Optional schedule of :class:`FrequencyStep` changes, applied in time
        order.  Phase is kept continuous across each change.
    """

    def __init__(
        self,
        frequency_hz: float,
        amplitude_ms2: float,
        steps: Optional[Sequence[FrequencyStep]] = None,
    ) -> None:
        if frequency_hz <= 0.0:
            raise ConfigurationError("ambient frequency must be positive")
        if amplitude_ms2 < 0.0:
            raise ConfigurationError("acceleration amplitude must be non-negative")
        self._initial_frequency = float(frequency_hz)
        self._initial_amplitude = float(amplitude_ms2)
        schedule = sorted(steps or [], key=lambda s: s.time)
        for step in schedule:
            if step.time < 0.0:
                raise ConfigurationError("frequency steps must occur at t >= 0")
            if step.frequency_hz <= 0.0:
                raise ConfigurationError("stepped frequency must be positive")
        self._steps: List[FrequencyStep] = list(schedule)
        # precompute segment boundaries with accumulated phase for continuity
        self._segments = self._build_segments()

    def _build_segments(self) -> List[Tuple[float, float, float, float]]:
        """Return segments as ``(t_start, frequency, amplitude, phase_at_start)``."""
        segments: List[Tuple[float, float, float, float]] = []
        t_prev = 0.0
        freq = self._initial_frequency
        amp = self._initial_amplitude
        phase = 0.0
        segments.append((t_prev, freq, amp, phase))
        for step in self._steps:
            # accumulate phase up to the step time with the old frequency
            phase = phase + 2.0 * math.pi * freq * (step.time - t_prev)
            t_prev = step.time
            freq = step.frequency_hz
            if step.amplitude_ms2 is not None:
                amp = step.amplitude_ms2
            segments.append((t_prev, freq, amp, phase))
        return segments

    def _segment_at(self, t: float) -> Tuple[float, float, float, float]:
        current = self._segments[0]
        for segment in self._segments:
            if segment[0] <= t:
                current = segment
            else:
                break
        return current

    # ------------------------------------------------------------------ #
    # public interface
    # ------------------------------------------------------------------ #
    def frequency(self, t: float) -> float:
        """Instantaneous ambient frequency in Hz at time ``t``."""
        return self._segment_at(t)[1]

    def amplitude(self, t: float) -> float:
        """Instantaneous acceleration amplitude (m/s^2) at time ``t``."""
        return self._segment_at(t)[2]

    def acceleration(self, t: float) -> float:
        """Base acceleration ``a(t)`` in m/s^2 (phase-continuous)."""
        t_start, freq, amp, phase = self._segment_at(t)
        return amp * math.sin(phase + 2.0 * math.pi * freq * (t - t_start))

    def step_times(self) -> List[float]:
        """Times at which the ambient excitation changes."""
        return [step.time for step in self._steps]

    def __call__(self, t: float) -> float:
        return self.acceleration(t)


class MultiToneVibrationSource:
    """Superposition of several sinusoidal tones (broadband-ish ambient).

    Useful for the design-exploration example: real environments rarely
    contain a single clean tone, and the tuning controller must lock onto
    the dominant one.
    """

    def __init__(self, tones: Sequence[Tuple[float, float]]) -> None:
        """``tones`` is a sequence of ``(frequency_hz, amplitude_ms2)`` pairs."""
        if not tones:
            raise ConfigurationError("at least one tone is required")
        for freq, amp in tones:
            if freq <= 0.0:
                raise ConfigurationError("tone frequency must be positive")
            if amp < 0.0:
                raise ConfigurationError("tone amplitude must be non-negative")
        self._tones = [(float(f), float(a)) for f, a in tones]

    @property
    def tones(self) -> List[Tuple[float, float]]:
        """The ``(frequency, amplitude)`` pairs of this source."""
        return list(self._tones)

    def dominant_frequency(self) -> float:
        """Frequency of the strongest tone (what a tuner should target)."""
        return max(self._tones, key=lambda tone: tone[1])[0]

    def frequency(self, t: float) -> float:
        """Report the dominant frequency (time-invariant for this source)."""
        return self.dominant_frequency()

    def amplitude(self, t: float) -> float:
        """Amplitude of the dominant tone."""
        return max(self._tones, key=lambda tone: tone[1])[1]

    def acceleration(self, t: float) -> float:
        """Sum of all tones at time ``t``."""
        return sum(
            amp * math.sin(2.0 * math.pi * freq * t) for freq, amp in self._tones
        )

    def __call__(self, t: float) -> float:
        return self.acceleration(t)
