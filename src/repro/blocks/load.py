"""Equivalent load resistor and microcontroller operating modes (Eq. 16).

The power drawn by the microcontroller and the tuning actuator is modelled
by an equivalent resistance across the storage element whose value depends
on the current operating mode:

====================  =================
mode                  Req
====================  =================
sleep                 1.0e9 ohm
awake (measuring)     33 ohm
tuning (actuator on)  16.7 ohm
====================  =================

The digital controller switches the mode through the supercapacitor
block's ``load_resistance`` control input.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum

from ..core.errors import ConfigurationError

__all__ = ["OperatingMode", "LoadProfile"]


class OperatingMode(Enum):
    """Operating modes of the microcontroller + actuator subsystem."""

    SLEEP = "sleep"
    AWAKE = "awake"
    TUNING = "tuning"


@dataclass(frozen=True)
class LoadProfile:
    """Equivalent load resistance for each operating mode (Eq. 16)."""

    sleep_ohm: float = 1.0e9
    awake_ohm: float = 33.0
    tuning_ohm: float = 16.7

    def __post_init__(self) -> None:
        for label, value in (
            ("sleep_ohm", self.sleep_ohm),
            ("awake_ohm", self.awake_ohm),
            ("tuning_ohm", self.tuning_ohm),
        ):
            if value <= 0.0:
                raise ConfigurationError(f"{label} must be positive, got {value}")

    def resistance(self, mode: OperatingMode) -> float:
        """Equivalent resistance for ``mode``."""
        if mode is OperatingMode.SLEEP:
            return self.sleep_ohm
        if mode is OperatingMode.AWAKE:
            return self.awake_ohm
        if mode is OperatingMode.TUNING:
            return self.tuning_ohm
        raise ConfigurationError(f"unknown operating mode {mode!r}")

    def power_at(self, mode: OperatingMode, voltage: float) -> float:
        """Power drawn from the storage element in ``mode`` at ``voltage``."""
        return voltage * voltage / self.resistance(mode)
