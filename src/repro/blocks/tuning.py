"""Magnetic tuning model: force-vs-gap law and resonant-frequency shift.

Eq. (12) of the paper relates the tuned resonant frequency to the axial
tuning force between the two tuning magnets:

.. math::

   f_r' = f_r \\sqrt{1 + F_t / F_b}

where ``f_r`` is the untuned resonant frequency and ``F_b`` the buckling
load of the cantilever.  The tuning force itself is set by the gap between
the cantilever-tip magnet and the magnet carried by the linear actuator; as
in Zhu et al. the attraction between two axially magnetised magnets falls
off steeply with separation, modelled here by the inverse-power law
``F_t(d) = k_m / d^n`` (n = 4 for the far-field dipole approximation).

:class:`MagneticTuningModel` provides both the forward maps (gap -> force
-> frequency) and their inverses, which is what the microcontroller needs
when it decides where to move the actuator.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from ..core.errors import ConfigurationError

__all__ = ["MagneticTuningModel"]


@dataclass(frozen=True)
class MagneticTuningModel:
    """Gap-to-force-to-frequency model of the magnetic tuning mechanism.

    Attributes
    ----------
    untuned_frequency_hz:
        Resonant frequency ``f_r`` with the tuning magnets far apart.
    buckling_load_n:
        Cantilever buckling load ``F_b`` in newtons (Eq. 12).
    force_constant:
        ``k_m`` of the force law ``F_t = k_m / d^exponent`` (N * m^exponent).
    exponent:
        Power-law exponent ``n`` (4 for the dipole far-field).
    min_gap_m, max_gap_m:
        Mechanical travel limits of the actuator-driven magnet.
    """

    untuned_frequency_hz: float
    buckling_load_n: float
    force_constant: float
    exponent: float = 4.0
    min_gap_m: float = 0.5e-3
    max_gap_m: float = 30e-3

    def __post_init__(self) -> None:
        if self.untuned_frequency_hz <= 0.0:
            raise ConfigurationError("untuned frequency must be positive")
        if self.buckling_load_n <= 0.0:
            raise ConfigurationError("buckling load must be positive")
        if self.force_constant <= 0.0:
            raise ConfigurationError("force constant must be positive")
        if self.exponent <= 0.0:
            raise ConfigurationError("force-law exponent must be positive")
        if not 0.0 < self.min_gap_m < self.max_gap_m:
            raise ConfigurationError("gap limits must satisfy 0 < min < max")

    # ------------------------------------------------------------------ #
    # forward maps
    # ------------------------------------------------------------------ #
    def force_from_gap(self, gap_m: float) -> float:
        """Axial tuning force ``F_t`` (N) for magnet separation ``gap_m``."""
        gap = min(max(gap_m, self.min_gap_m), self.max_gap_m)
        return self.force_constant / gap**self.exponent

    def frequency_from_force(self, force_n: float) -> float:
        """Tuned resonant frequency for tuning force ``force_n`` (Eq. 12)."""
        ratio = 1.0 + force_n / self.buckling_load_n
        if ratio <= 0.0:
            raise ConfigurationError(
                f"tuning force {force_n} N exceeds the compressive buckling limit"
            )
        return self.untuned_frequency_hz * math.sqrt(ratio)

    def frequency_from_gap(self, gap_m: float) -> float:
        """Tuned resonant frequency for magnet separation ``gap_m``."""
        return self.frequency_from_force(self.force_from_gap(gap_m))

    # ------------------------------------------------------------------ #
    # inverse maps (used by the tuning controller)
    # ------------------------------------------------------------------ #
    def force_for_frequency(self, target_hz: float) -> float:
        """Tuning force needed to reach ``target_hz`` (Eq. 12 inverted)."""
        if target_hz < self.untuned_frequency_hz:
            raise ConfigurationError(
                f"target {target_hz} Hz is below the untuned frequency "
                f"{self.untuned_frequency_hz} Hz; attractive tuning can only "
                "raise the resonant frequency"
            )
        ratio = (target_hz / self.untuned_frequency_hz) ** 2
        return self.buckling_load_n * (ratio - 1.0)

    def gap_for_force(self, force_n: float) -> float:
        """Magnet separation that yields ``force_n`` (clipped to travel)."""
        if force_n <= 0.0:
            return self.max_gap_m
        gap = (self.force_constant / force_n) ** (1.0 / self.exponent)
        return min(max(gap, self.min_gap_m), self.max_gap_m)

    def gap_for_frequency(self, target_hz: float) -> float:
        """Magnet separation that tunes the harvester to ``target_hz``."""
        return self.gap_for_force(self.force_for_frequency(target_hz))

    # ------------------------------------------------------------------ #
    # tuning range
    # ------------------------------------------------------------------ #
    def frequency_range(self) -> tuple:
        """``(f_min, f_max)`` achievable over the actuator travel."""
        f_min = self.frequency_from_gap(self.max_gap_m)
        f_max = self.frequency_from_gap(self.min_gap_m)
        return (f_min, f_max)

    def tuning_range_hz(self) -> float:
        """Width of the achievable tuning range in Hz.

        The practical harvester of the paper has a maximum tuning range of
        14 Hz (Scenario 2 exercises the full range).
        """
        f_min, f_max = self.frequency_range()
        return f_max - f_min
