"""Stock component library: registry entries for every shipped block.

Every analogue block of the repository (plus the digital tuning controller
and the vibration source) registers here under a string key with a typed
parameter schema, making the whole component set addressable from a
declarative :class:`~repro.core.spec.SystemSpec`.  The module is imported
lazily by :meth:`repro.core.registry.BlockRegistry.ensure_default_library`
— never import it from :mod:`repro.core` at module level.

Registered keys:

====================================  ==========  =============================
key                                   role        block
====================================  ==========  =============================
``electromagnetic_generator``         analogue    :class:`ElectromagneticMicrogenerator`
``piezoelectric_generator``           analogue    :class:`PiezoelectricMicrogenerator`
``electrostatic_generator``           analogue    :class:`ElectrostaticMicrogenerator`
``dickson_multiplier``                analogue    :class:`DicksonMultiplier`
``supercapacitor``                    analogue    :class:`Supercapacitor`
``tuning_controller``                 controller  :class:`TuningController`
``vibration_source``                  source      :class:`VibrationSource`
====================================  ==========  =============================
"""

from __future__ import annotations

from ..core.registry import ParameterField, register_block
from .actuator import LinearActuator
from .diode import DiodeParameters
from .electrostatic import ElectrostaticMicrogenerator, ElectrostaticParameters
from .load import LoadProfile
from .microcontroller import ControllerSettings, TuningController
from .microgenerator import ElectromagneticMicrogenerator, MicrogeneratorParameters
from .piezoelectric import PiezoelectricMicrogenerator, PiezoelectricParameters
from .supercapacitor import Supercapacitor, SupercapacitorParameters
from .tuning import MagneticTuningModel
from .vibration import FrequencyStep, VibrationSource
from .voltage_multiplier import DicksonMultiplier

__all__ = []  # the module's effect is registration, not exports


def _f(name: str, default=None, *, required: bool = False, description: str = ""):
    """Shorthand for a float schema field."""
    if required:
        return ParameterField(name, "float", description=description)
    return ParameterField(name, "float", default=default, description=description)


# ---------------------------------------------------------------------- #
# microgenerators (the paper's Section II transduction mechanisms)
# ---------------------------------------------------------------------- #
@register_block(
    "electromagnetic_generator",
    params=(
        _f("proof_mass_kg", required=True),
        _f("parasitic_damping", required=True),
        _f("spring_stiffness", required=True),
        _f("flux_linkage", required=True),
        _f("coil_resistance", required=True),
        _f("coil_inductance", required=True),
        _f("buckling_load_n", required=True),
        _f("tuning_force_z_fraction", 0.01),
        _f("initial_tuning_force_n", 0.0, description="pre-applied tuning force"),
    ),
    terminals=(("Vm", "voltage"), ("Im", "current")),
    description="tunable electromagnetic microgenerator (Eq. 8-13)",
)
def _make_electromagnetic_generator(name, params, context):
    p = MicrogeneratorParameters(
        proof_mass_kg=params["proof_mass_kg"],
        parasitic_damping=params["parasitic_damping"],
        spring_stiffness=params["spring_stiffness"],
        flux_linkage=params["flux_linkage"],
        coil_resistance=params["coil_resistance"],
        coil_inductance=params["coil_inductance"],
        buckling_load_n=params["buckling_load_n"],
        tuning_force_z_fraction=params["tuning_force_z_fraction"],
    )
    block = ElectromagneticMicrogenerator(p, context.acceleration, name=name)
    if params["initial_tuning_force_n"] > 0.0:
        block.apply_control("tuning_force", params["initial_tuning_force_n"])
    return block


@register_block(
    "piezoelectric_generator",
    params=(
        _f("proof_mass_kg", 0.008),
        _f("parasitic_damping", 0.05),
        _f("spring_stiffness", 1500.0),
        _f("coupling_n_per_v", 1.5e-3),
        _f("clamp_capacitance_f", 60e-9),
        _f("buckling_load_n", 1.0),
        _f("series_resistance_ohm", 0.0),
        _f("initial_tuning_force_n", 0.0),
    ),
    terminals=(("Vm", "voltage"), ("Im", "current")),
    description="lumped cantilever piezoelectric harvester",
)
def _make_piezoelectric_generator(name, params, context):
    p = PiezoelectricParameters(
        proof_mass_kg=params["proof_mass_kg"],
        parasitic_damping=params["parasitic_damping"],
        spring_stiffness=params["spring_stiffness"],
        coupling_n_per_v=params["coupling_n_per_v"],
        clamp_capacitance_f=params["clamp_capacitance_f"],
        buckling_load_n=params["buckling_load_n"],
        series_resistance_ohm=params["series_resistance_ohm"],
    )
    block = PiezoelectricMicrogenerator(p, context.acceleration, name=name)
    if params["initial_tuning_force_n"] > 0.0:
        block.apply_control("tuning_force", params["initial_tuning_force_n"])
    return block


@register_block(
    "electrostatic_generator",
    params=(
        _f("proof_mass_kg", 0.002),
        _f("parasitic_damping", 0.02),
        _f("spring_stiffness", 400.0),
        _f("plate_area_m2", 4e-4),
        _f("nominal_gap_m", 100e-6),
        _f("bias_charge_c", 2e-8),
        _f("series_resistance_ohm", 0.0),
        _f("bias_voltage_v", 0.0),
        _f("recharge_resistance_ohm", 0.0),
    ),
    terminals=(("Vm", "voltage"), ("Im", "current")),
    description="gap-closing electrostatic harvester (finite-difference linearisation)",
)
def _make_electrostatic_generator(name, params, context):
    p = ElectrostaticParameters(
        proof_mass_kg=params["proof_mass_kg"],
        parasitic_damping=params["parasitic_damping"],
        spring_stiffness=params["spring_stiffness"],
        plate_area_m2=params["plate_area_m2"],
        nominal_gap_m=params["nominal_gap_m"],
        bias_charge_c=params["bias_charge_c"],
        series_resistance_ohm=params["series_resistance_ohm"],
        bias_voltage_v=params["bias_voltage_v"],
        recharge_resistance_ohm=params["recharge_resistance_ohm"],
    )
    return ElectrostaticMicrogenerator(p, context.acceleration, name=name)


# ---------------------------------------------------------------------- #
# power conditioning and storage
# ---------------------------------------------------------------------- #
@register_block(
    "dickson_multiplier",
    params=(
        ParameterField(
            "n_stages",
            "int",
            default=5,
            structural=True,
            description="stage count (changes the state-vector shape)",
        ),
        _f("stage_capacitance_f", 10e-6),
        _f("output_capacitance_f", 220e-6),
        _f("input_capacitance_f", 0.1e-6),
        _f("diode_saturation_current_a", 1e-8),
        _f("diode_thermal_voltage_v", 25.85e-3),
        _f("diode_series_resistance_ohm", 50.0),
        _f("diode_reverse_conductance_s", 1e-9),
    ),
    terminals=(
        ("Vm", "voltage"),
        ("Im", "current"),
        ("Vc", "voltage"),
        ("Ic", "current"),
    ),
    description="n-stage Dickson voltage multiplier with input filter node",
)
def _make_dickson_multiplier(name, params, context):
    diode = DiodeParameters(
        saturation_current_a=params["diode_saturation_current_a"],
        thermal_voltage_v=params["diode_thermal_voltage_v"],
        series_resistance_ohm=params["diode_series_resistance_ohm"],
        reverse_conductance_s=params["diode_reverse_conductance_s"],
    )
    return DicksonMultiplier(
        n_stages=params["n_stages"],
        stage_capacitance_f=params["stage_capacitance_f"],
        output_capacitance_f=params["output_capacitance_f"],
        input_capacitance_f=params["input_capacitance_f"],
        diode_params=diode,
        name=name,
    )


@register_block(
    "supercapacitor",
    params=(
        _f("immediate_resistance_ohm", 2.5),
        _f("immediate_capacitance_f", 0.9),
        _f("delayed_resistance_ohm", 90.0),
        _f("delayed_capacitance_f", 0.18),
        _f("longterm_resistance_ohm", 900.0),
        _f("longterm_capacitance_f", 0.12),
        _f("leakage_resistance_ohm", 0.0, description="0 disables leakage"),
        _f("initial_voltage_v", 0.0),
        _f("load_sleep_ohm", 1.0e9),
        _f("load_awake_ohm", 33.0),
        _f("load_tuning_ohm", 16.7),
    ),
    terminals=(("Vc", "voltage"), ("Ic", "current")),
    description="Zubieta three-branch supercapacitor + Eq. 16 equivalent load",
)
def _make_supercapacitor(name, params, context):
    sc_params = SupercapacitorParameters(
        immediate_resistance_ohm=params["immediate_resistance_ohm"],
        immediate_capacitance_f=params["immediate_capacitance_f"],
        delayed_resistance_ohm=params["delayed_resistance_ohm"],
        delayed_capacitance_f=params["delayed_capacitance_f"],
        longterm_resistance_ohm=params["longterm_resistance_ohm"],
        longterm_capacitance_f=params["longterm_capacitance_f"],
        leakage_resistance_ohm=(
            params["leakage_resistance_ohm"]
            if params["leakage_resistance_ohm"] > 0.0
            else None
        ),
    )
    load_profile = LoadProfile(
        sleep_ohm=params["load_sleep_ohm"],
        awake_ohm=params["load_awake_ohm"],
        tuning_ohm=params["load_tuning_ohm"],
    )
    return Supercapacitor(
        params=sc_params,
        load_profile=load_profile,
        initial_voltage_v=params["initial_voltage_v"],
        name=name,
    )


# ---------------------------------------------------------------------- #
# digital controller
# ---------------------------------------------------------------------- #
@register_block(
    "tuning_controller",
    role="controller",
    params=(
        # behavioural settings (Fig. 7 flow)
        _f("watchdog_period_s", 5.0),
        _f("wake_voltage_v", 1.8),
        _f("abort_voltage_v", 0.5),
        _f("frequency_tolerance_hz", 0.25),
        _f("measurement_duration_s", 0.5),
        _f("tuning_poll_interval_s", 0.25),
        # magnetic tuning mechanism + actuator (used only when the caller
        # does not hand shared instances in through the build context)
        _f("untuned_frequency_hz", required=True),
        _f("buckling_load_n", 4.5),
        _f("force_constant", 5.0e-12),
        _f("force_exponent", 4.0),
        _f("min_gap_m", 1.2e-3),
        _f("max_gap_m", 30e-3),
        _f("actuator_speed_m_per_s", 2.0e-3),
        _f("actuator_power_w", 0.5),
        _f("initial_gap_m", 0.0, description="0 leaves the actuator un-tuned"),
        # Eq. 16 equivalent load the controller switches between
        _f("load_sleep_ohm", 1.0e9),
        _f("load_awake_ohm", 33.0),
        _f("load_tuning_ohm", 16.7),
    ),
    description="watchdog-driven frequency-tuning controller (Fig. 7)",
)
def _make_tuning_controller(name, params, context):
    extras = getattr(context, "extras", None) or {}
    settings = ControllerSettings(
        watchdog_period_s=params["watchdog_period_s"],
        wake_voltage_v=params["wake_voltage_v"],
        abort_voltage_v=params["abort_voltage_v"],
        frequency_tolerance_hz=params["frequency_tolerance_hz"],
        measurement_duration_s=params["measurement_duration_s"],
        tuning_poll_interval_s=params["tuning_poll_interval_s"],
    )
    tuning_model = extras.get("tuning_model") or MagneticTuningModel(
        untuned_frequency_hz=params["untuned_frequency_hz"],
        buckling_load_n=params["buckling_load_n"],
        force_constant=params["force_constant"],
        exponent=params["force_exponent"],
        min_gap_m=params["min_gap_m"],
        max_gap_m=params["max_gap_m"],
    )
    actuator = extras.get("actuator")
    if actuator is None:
        actuator = LinearActuator(
            speed_m_per_s=params["actuator_speed_m_per_s"],
            min_position_m=params["min_gap_m"],
            max_position_m=params["max_gap_m"],
            supply_power_w=params["actuator_power_w"],
        )
        if params["initial_gap_m"] > 0.0:
            actuator.position_m = min(
                max(params["initial_gap_m"], params["min_gap_m"]),
                params["max_gap_m"],
            )
    load_profile = extras.get("load_profile") or LoadProfile(
        sleep_ohm=params["load_sleep_ohm"],
        awake_ohm=params["load_awake_ohm"],
        tuning_ohm=params["load_tuning_ohm"],
    )
    return TuningController(
        tuning_model=tuning_model,
        actuator=actuator,
        settings=settings,
        load_profile=load_profile,
        name=name,
    )


# ---------------------------------------------------------------------- #
# excitation source
# ---------------------------------------------------------------------- #
@register_block(
    "vibration_source",
    role="source",
    params=(
        _f("frequency_hz", required=True),
        _f("amplitude_ms2", required=True),
        ParameterField(
            "steps",
            "list",
            default=[],
            description="schedule of {time, frequency_hz, amplitude_ms2} dicts",
        ),
    ),
    description="single-tone base acceleration with scheduled frequency steps",
)
def _make_vibration_source(name, params, context):
    steps = [
        FrequencyStep(
            time=float(step["time"]),
            frequency_hz=float(step["frequency_hz"]),
            amplitude_ms2=(
                None
                if step.get("amplitude_ms2") is None
                else float(step["amplitude_ms2"])
            ),
        )
        for step in params["steps"]
    ]
    return VibrationSource(
        params["frequency_hz"], params["amplitude_ms2"], steps=steps or None
    )
