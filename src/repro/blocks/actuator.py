"""Linear actuator that positions the moving tuning magnet.

The actuator is a quasi-static mechanical component: it travels at a
constant speed towards a commanded position and draws a fixed electrical
power while moving (which the paper captures on the electrical side by
switching the equivalent load resistance to its "actuator performs tuning"
value, Eq. 16).  Because its mechanical dynamics are orders of magnitude
slower than the vibration, it is modelled as a discrete-time component that
the microcontroller polls rather than as an analogue block with state
equations.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from ..core.errors import ConfigurationError

__all__ = ["LinearActuator"]


@dataclass
class LinearActuator:
    """Constant-speed linear actuator with travel limits.

    Attributes
    ----------
    speed_m_per_s:
        Travel speed (the practical actuator moves at ~0.1-1 mm/s).
    min_position_m, max_position_m:
        Travel limits; positions are magnet gaps in metres.
    position_m:
        Current position (defaults to the maximum gap, i.e. un-tuned).
    supply_power_w:
        Electrical power drawn while moving (used for energy accounting in
        the analysis layer; the circuit-level effect comes from Req).
    """

    speed_m_per_s: float
    min_position_m: float
    max_position_m: float
    position_m: Optional[float] = None
    supply_power_w: float = 0.2
    _target_m: Optional[float] = field(default=None, repr=False)
    _last_update_time: float = field(default=0.0, repr=False)
    energy_consumed_j: float = field(default=0.0, repr=False)

    def __post_init__(self) -> None:
        if self.speed_m_per_s <= 0.0:
            raise ConfigurationError("actuator speed must be positive")
        if not self.min_position_m < self.max_position_m:
            raise ConfigurationError("actuator travel limits are inverted")
        if self.position_m is None:
            self.position_m = self.max_position_m
        if not self.min_position_m <= self.position_m <= self.max_position_m:
            raise ConfigurationError("initial actuator position outside travel")
        if self.supply_power_w < 0.0:
            raise ConfigurationError("supply power must be non-negative")

    # ------------------------------------------------------------------ #
    # commands
    # ------------------------------------------------------------------ #
    def command(self, target_m: float, t: float) -> float:
        """Command a move to ``target_m`` starting at time ``t``.

        Returns the expected travel duration in seconds.
        """
        target = min(max(target_m, self.min_position_m), self.max_position_m)
        self.update(t)
        self._target_m = target
        return abs(target - self.position_m) / self.speed_m_per_s

    def cancel(self, t: float) -> None:
        """Stop the current move, keeping the present position."""
        self.update(t)
        self._target_m = None

    # ------------------------------------------------------------------ #
    # time evolution
    # ------------------------------------------------------------------ #
    def update(self, t: float) -> float:
        """Advance the actuator to time ``t`` and return its position."""
        dt = t - self._last_update_time
        if dt < 0.0:
            raise ConfigurationError(
                f"actuator asked to move backwards in time ({t} < {self._last_update_time})"
            )
        if dt > 0.0 and self._target_m is not None:
            travel = self.speed_m_per_s * dt
            distance = self._target_m - self.position_m
            if abs(distance) <= travel:
                moving_time = abs(distance) / self.speed_m_per_s
                self.position_m = self._target_m
                self._target_m = None
                self.energy_consumed_j += self.supply_power_w * moving_time
            else:
                self.position_m += travel if distance > 0 else -travel
                self.energy_consumed_j += self.supply_power_w * dt
        self._last_update_time = t
        return self.position_m

    @property
    def is_moving(self) -> bool:
        """Whether a move command is still in progress."""
        return self._target_m is not None

    def time_to_target(self) -> float:
        """Remaining travel time for the current command (0 when idle)."""
        if self._target_m is None:
            return 0.0
        return abs(self._target_m - self.position_m) / self.speed_m_per_s
