"""Microcontroller tuning process — the digital part of the harvester (Fig. 7).

The microcontroller is purely digital, so it carries no state equations;
it is a :class:`~repro.core.digital.DigitalProcess` driven by a watchdog
timer.  Its behaviour follows the paper's flow chart:

1. the watchdog timer wakes the microcontroller periodically;
2. it first checks whether the supercapacitor holds enough energy — if
   not, it goes straight back to sleep;
3. with enough energy it wakes fully (load switches to the *awake*
   resistance), measures the ambient vibration frequency and compares it
   with the microgenerator's resonant frequency;
4. if they differ by more than a tolerance it starts the tuning process:
   the load switches to the *tuning* resistance, the linear actuator moves
   the tuning magnet towards the position whose magnetic force re-tunes the
   cantilever (Eq. 12), and the generator's ``tuning_force`` control is
   updated as the magnet travels;
5. when the actuator reaches its target the controller returns the load to
   the sleep value and waits for the next watchdog period.

Probes read: ``storage_voltage``, ``ambient_frequency``,
``resonant_frequency``.  Controls written: ``load_resistance``,
``tuning_force``.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum
from typing import List, Optional, Tuple

from ..core.digital import AnalogueInterface, DigitalProcess
from ..core.errors import ConfigurationError
from .actuator import LinearActuator
from .load import LoadProfile, OperatingMode
from .tuning import MagneticTuningModel

__all__ = ["ControllerSettings", "ControllerState", "TuningController"]


class ControllerState(Enum):
    """Internal state of the tuning controller's state machine."""

    SLEEPING = "sleeping"
    MEASURING = "measuring"
    TUNING = "tuning"


@dataclass
class ControllerSettings:
    """Behavioural parameters of the tuning controller.

    Attributes
    ----------
    watchdog_period_s:
        Sleep interval between watchdog wake-ups.
    wake_voltage_v:
        Minimum supercapacitor voltage required to attempt a measurement.
    abort_voltage_v:
        Voltage below which an in-progress tuning is abandoned.
    frequency_tolerance_hz:
        Mismatch (|ambient - resonant|) below which no tuning is started.
    measurement_duration_s:
        Time spent awake measuring the ambient frequency before deciding.
    tuning_poll_interval_s:
        Interval at which the controller updates the tuning force while the
        actuator is travelling.
    """

    watchdog_period_s: float = 5.0
    wake_voltage_v: float = 1.8
    abort_voltage_v: float = 0.5
    frequency_tolerance_hz: float = 0.25
    measurement_duration_s: float = 0.5
    tuning_poll_interval_s: float = 0.25

    def validate(self) -> None:
        """Raise :class:`ConfigurationError` on inconsistent settings."""
        if self.watchdog_period_s <= 0.0:
            raise ConfigurationError("watchdog period must be positive")
        if self.wake_voltage_v < 0.0:
            raise ConfigurationError("wake voltage must be non-negative")
        if self.abort_voltage_v < 0.0:
            raise ConfigurationError("abort voltage must be non-negative")
        if self.abort_voltage_v > self.wake_voltage_v:
            raise ConfigurationError("abort voltage must not exceed wake voltage")
        if self.frequency_tolerance_hz <= 0.0:
            raise ConfigurationError("frequency tolerance must be positive")
        if self.measurement_duration_s <= 0.0:
            raise ConfigurationError("measurement duration must be positive")
        if self.tuning_poll_interval_s <= 0.0:
            raise ConfigurationError("tuning poll interval must be positive")


class TuningController(DigitalProcess):
    """The microcontroller digital process implementing Fig. 7."""

    def __init__(
        self,
        tuning_model: MagneticTuningModel,
        actuator: LinearActuator,
        settings: Optional[ControllerSettings] = None,
        load_profile: LoadProfile = LoadProfile(),
        name: str = "mcu",
        start_time: float = 0.0,
    ) -> None:
        super().__init__(name, start_time=start_time)
        self.tuning_model = tuning_model
        self.actuator = actuator
        self.settings = settings or ControllerSettings()
        self.settings.validate()
        self.load_profile = load_profile
        self.state = ControllerState.SLEEPING
        self._current_req: Optional[float] = None
        self._target_frequency_hz: Optional[float] = None
        # bookkeeping for tests and analysis
        self.n_wakeups = 0
        self.n_measurements = 0
        self.n_tunings_started = 0
        self.n_tunings_completed = 0
        self.n_tunings_aborted = 0
        self.event_log: List[Tuple[float, str]] = []

    # ------------------------------------------------------------------ #
    # helpers
    # ------------------------------------------------------------------ #
    def _log(self, t: float, message: str) -> None:
        self.event_log.append((t, message))

    def _set_mode(self, analogue: AnalogueInterface, mode: OperatingMode) -> None:
        req = self.load_profile.resistance(mode)
        if self._current_req is None or req != self._current_req:
            analogue.write("load_resistance", req)
            self._current_req = req

    def _apply_gap(self, analogue: AnalogueInterface, gap_m: float) -> None:
        force = self.tuning_model.force_from_gap(gap_m)
        analogue.write("tuning_force", force)

    # ------------------------------------------------------------------ #
    # the state machine
    # ------------------------------------------------------------------ #
    def execute(self, t: float, analogue: AnalogueInterface) -> Optional[float]:
        settings = self.settings
        if self.state is ControllerState.SLEEPING:
            return self._on_watchdog(t, analogue)
        if self.state is ControllerState.MEASURING:
            return self._on_measurement_done(t, analogue)
        if self.state is ControllerState.TUNING:
            return self._on_tuning_poll(t, analogue)
        raise ConfigurationError(f"controller in unknown state {self.state!r}")

    def _on_watchdog(self, t: float, analogue: AnalogueInterface) -> float:
        settings = self.settings
        self.n_wakeups += 1
        storage_voltage = analogue.read("storage_voltage")
        if storage_voltage < settings.wake_voltage_v:
            # not enough energy: stay asleep until the next watchdog period
            self._log(t, f"watchdog: V={storage_voltage:.3f} V below wake threshold")
            self._set_mode(analogue, OperatingMode.SLEEP)
            return settings.watchdog_period_s
        # enough energy: wake up fully and measure the ambient frequency
        self._log(t, f"watchdog: waking up at V={storage_voltage:.3f} V")
        self._set_mode(analogue, OperatingMode.AWAKE)
        self.state = ControllerState.MEASURING
        return settings.measurement_duration_s

    def _on_measurement_done(self, t: float, analogue: AnalogueInterface) -> float:
        settings = self.settings
        self.n_measurements += 1
        ambient = analogue.read("ambient_frequency")
        resonant = analogue.read("resonant_frequency")
        mismatch = abs(ambient - resonant)
        if mismatch <= settings.frequency_tolerance_hz:
            self._log(
                t,
                f"measured ambient {ambient:.2f} Hz ~ resonant {resonant:.2f} Hz; sleeping",
            )
            self._set_mode(analogue, OperatingMode.SLEEP)
            self.state = ControllerState.SLEEPING
            return settings.watchdog_period_s
        # frequency mismatch: start the tuning process
        f_min, f_max = self.tuning_model.frequency_range()
        target = min(max(ambient, f_min), f_max)
        self._target_frequency_hz = target
        gap = self.tuning_model.gap_for_frequency(target)
        travel_time = self.actuator.command(gap, t)
        self.n_tunings_started += 1
        self._log(
            t,
            f"tuning started: ambient {ambient:.2f} Hz, resonant {resonant:.2f} Hz, "
            f"target gap {gap * 1e3:.2f} mm ({travel_time:.2f} s travel)",
        )
        self._set_mode(analogue, OperatingMode.TUNING)
        self.state = ControllerState.TUNING
        return min(settings.tuning_poll_interval_s, max(travel_time, 1e-6))

    def _on_tuning_poll(self, t: float, analogue: AnalogueInterface) -> float:
        settings = self.settings
        storage_voltage = analogue.read("storage_voltage")
        position = self.actuator.update(t)
        # track the actual magnet position with the tuning force control
        self._apply_gap(analogue, position)
        if storage_voltage < settings.abort_voltage_v:
            # the storage collapsed: abort and recover
            self.actuator.cancel(t)
            self.n_tunings_aborted += 1
            self._log(t, f"tuning aborted: V={storage_voltage:.3f} V")
            self._set_mode(analogue, OperatingMode.SLEEP)
            self.state = ControllerState.SLEEPING
            self._target_frequency_hz = None
            return settings.watchdog_period_s
        if self.actuator.is_moving:
            return settings.tuning_poll_interval_s
        # finished: report and go back to sleep
        self.n_tunings_completed += 1
        resonant = analogue.read("resonant_frequency")
        self._log(
            t,
            f"tuning complete: resonant frequency now {resonant:.2f} Hz "
            f"(target {self._target_frequency_hz:.2f} Hz)",
        )
        self._set_mode(analogue, OperatingMode.SLEEP)
        self.state = ControllerState.SLEEPING
        self._target_frequency_hz = None
        return settings.watchdog_period_s
