"""Piezoelectric microgenerator block (extension).

The paper's conclusion notes that the linearised state-space approach "is a
generic approach which can be applied to other types of microgenerators
such as electrostatic or piezoelectric.  All that is required are the model
equations of each component block".  This module supplies those equations
for the standard lumped piezoelectric harvester model:

.. math::

   m \\ddot z + c \\dot z + k z + \\Theta V_p = F_a \\\\
   C_p \\dot V_p = \\Theta \\dot z - I_m

where ``Theta`` is the electromechanical coupling coefficient and ``C_p``
the piezo clamp capacitance.  State variables: ``z``, ``v``, ``Vp``;
terminal variables: ``Vm``, ``Im`` with the constraint
``Vm = Vp - Rs Im`` (``Rs`` is the electrode series resistance, 0 by
default, giving the ideal ``Vm = Vp``).

The block exposes the same ``tuning_force`` control and resonance
properties as the electromagnetic generator so it can be dropped into the
same harvester assembly (electrical-stiffness tuning of piezo harvesters
behaves analogously at this abstraction level).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable

import numpy as np

from ..core.block import AnalogueBlock, BlockLinearisation
from ..core.errors import ConfigurationError

__all__ = ["PiezoelectricParameters", "PiezoelectricMicrogenerator"]


@dataclass(frozen=True)
class PiezoelectricParameters:
    """Lumped parameters of a cantilever piezoelectric harvester."""

    proof_mass_kg: float = 0.008
    parasitic_damping: float = 0.05
    spring_stiffness: float = 1500.0
    coupling_n_per_v: float = 1.5e-3
    clamp_capacitance_f: float = 60e-9
    buckling_load_n: float = 1.0
    #: electrode/lead series resistance; the terminal relation becomes
    #: ``Vm = Vp - Rs Im``.  0 keeps the ideal ``Vm = Vp`` contract, but a
    #: positive value is required when the load itself pins the terminal
    #: voltage (e.g. the Dickson multiplier's input-filter node) — otherwise
    #: the assembled algebraic system is singular.  Values of a few
    #: kilo-ohms also bound the fastest electrical time constant, keeping
    #: the coupled system in the non-stiff regime the explicit solver
    #: targets (same reasoning as the multiplier's diode resistance).
    series_resistance_ohm: float = 0.0

    def __post_init__(self) -> None:
        checks = (
            ("proof_mass_kg", self.proof_mass_kg),
            ("spring_stiffness", self.spring_stiffness),
            ("coupling_n_per_v", self.coupling_n_per_v),
            ("clamp_capacitance_f", self.clamp_capacitance_f),
            ("buckling_load_n", self.buckling_load_n),
        )
        for label, value in checks:
            if value <= 0.0:
                raise ConfigurationError(f"{label} must be positive, got {value}")
        if self.parasitic_damping < 0.0:
            raise ConfigurationError("parasitic damping must be non-negative")
        if self.series_resistance_ohm < 0.0:
            raise ConfigurationError("series resistance must be non-negative")

    @property
    def untuned_frequency_hz(self) -> float:
        """Short-circuit resonant frequency of the mechanical resonator."""
        return math.sqrt(self.spring_stiffness / self.proof_mass_kg) / (2.0 * math.pi)


class PiezoelectricMicrogenerator(AnalogueBlock):
    """Piezoelectric harvester with the same port contract as the EM generator."""

    def __init__(
        self,
        params: PiezoelectricParameters,
        acceleration: Callable[[float], float],
        name: str = "piezo",
    ) -> None:
        super().__init__(
            name,
            state_names=("z", "velocity", "Vp"),
            terminal_names=("Vm", "Im"),
            terminal_kinds=("voltage", "current"),
            n_algebraic=1,
        )
        self.params = params
        self._acceleration = acceleration
        self._tuning_force = 0.0

    # ------------------------------------------------------------------ #
    # tuning interface (mirrors the electromagnetic generator)
    # ------------------------------------------------------------------ #
    @property
    def tuning_force(self) -> float:
        """Currently applied tuning force (N)."""
        return self._tuning_force

    @property
    def effective_stiffness(self) -> float:
        """Tuned stiffness following the Eq. (12) law."""
        return self.params.spring_stiffness * (
            1.0 + self._tuning_force / self.params.buckling_load_n
        )

    @property
    def resonant_frequency_hz(self) -> float:
        """Current (tuned) resonant frequency."""
        return math.sqrt(self.effective_stiffness / self.params.proof_mass_kg) / (
            2.0 * math.pi
        )

    def apply_control(self, name: str, value: float) -> None:
        if name == "tuning_force":
            if value < 0.0:
                raise ConfigurationError("tuning force must be non-negative")
            self._tuning_force = float(value)
            return
        super().apply_control(name, value)

    # ------------------------------------------------------------------ #
    # model equations
    # ------------------------------------------------------------------ #
    def _matrices(self, t: float):
        p = self.params
        m = p.proof_mass_kg
        jxx = np.array(
            [
                [0.0, 1.0, 0.0],
                [-self.effective_stiffness / m, -p.parasitic_damping / m, -p.coupling_n_per_v / m],
                [0.0, p.coupling_n_per_v / p.clamp_capacitance_f, 0.0],
            ]
        )
        jxy = np.array(
            [
                [0.0, 0.0],
                [0.0, 0.0],
                [0.0, -1.0 / p.clamp_capacitance_f],
            ]
        )
        ex = np.array([0.0, float(self._acceleration(t)), 0.0])
        return jxx, jxy, ex

    def derivatives(self, t: float, x: np.ndarray, y: np.ndarray) -> np.ndarray:
        jxx, jxy, ex = self._matrices(t)
        return jxx @ x + jxy @ y + ex

    def algebraic_residual(self, t: float, x: np.ndarray, y: np.ndarray) -> np.ndarray:
        # terminal voltage = piezo capacitance voltage minus the series drop
        return np.array([y[0] - x[2] + self.params.series_resistance_ohm * y[1]])

    def linearise(self, t: float, x: np.ndarray, y: np.ndarray) -> BlockLinearisation:
        jxx, jxy, ex = self._matrices(t)
        jyx = np.array([[0.0, 0.0, -1.0]])
        jyy = np.array([[1.0, self.params.series_resistance_ohm]])
        ey = np.zeros(1)
        return BlockLinearisation(jxx=jxx, jxy=jxy, ex=ex, jyx=jyx, jyy=jyy, ey=ey)
