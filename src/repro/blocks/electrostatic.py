"""Electrostatic microgenerator block (extension).

Second of the two "other microgenerator types" the paper's conclusion
mentions.  A gap-closing electrostatic harvester is a charged variable
capacitor: the vibrating proof mass changes the electrode gap, and with a
bias charge on the plates the capacitance change pumps energy into the
electrical domain.

Lumped model (charge-constrained operation with optional bias
replenishment):

.. math::

   m \\ddot z + c \\dot z + k z + \\frac{Q^2}{2 \\varepsilon_0 A} = F_a \\\\
   \\dot Q = -I_m + \\frac{V_b - V_{cap}}{R_r} \\qquad
   V_m = V_{cap} - R_s I_m \\qquad
   V_{cap} = \\frac{Q (g_0 - z)}{\\varepsilon_0 A}

State variables: ``z``, ``v``, ``Q``.  Terminal variables: ``Vm``, ``Im``,
with ``Im`` the current delivered *into* the attached load (the same
convention as the electromagnetic generator, so the blocks are
interchangeable on one power chain).  ``R_s`` is an optional series
resistance (0 by default).  ``V_b``/``R_r`` model the bias-voltage
replenishment path of a practical electret/charge-pump harvester: the
plate charge drained through the rectifier is restored from the bias
source while the plates are close (low voltage), so energy conversion is
sustained cycle after cycle instead of a one-shot discharge of the
initial charge.  ``R_r = 0`` (default) disables the path, recovering the
strict charge-constrained model.
The terminal-voltage relation is genuinely nonlinear (product of state
variables), so this block deliberately *omits* an analytic ``linearise``
and exercises the solver's finite-difference fallback — demonstrating that
a block author only needs to supply the model equations, exactly as the
paper claims.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable, Sequence, Tuple

import numpy as np

from ..core.block import AnalogueBlock, BatchedLinearisation
from ..core.errors import ConfigurationError
from .vibration import batch_acceleration

__all__ = ["ElectrostaticParameters", "ElectrostaticMicrogenerator"]

_EPSILON_0 = 8.8541878128e-12


@dataclass(frozen=True)
class ElectrostaticParameters:
    """Lumped parameters of a gap-closing electrostatic harvester."""

    proof_mass_kg: float = 0.002
    parasitic_damping: float = 0.02
    spring_stiffness: float = 400.0
    plate_area_m2: float = 4e-4
    nominal_gap_m: float = 100e-6
    bias_charge_c: float = 2e-8
    #: lead/contact series resistance; the terminal relation becomes
    #: ``Vm = Vcap - Rs Im``.  0 keeps the ideal contract but is singular
    #: against loads that pin their own input voltage; electrostatic
    #: harvesters are high-impedance devices, so megaohm-scale values are
    #: physical and also keep the plate-charge time constant ``Rs C``
    #: within the explicit solver's non-stiff regime.
    series_resistance_ohm: float = 0.0
    #: bias source voltage of the charge-replenishment path (electret /
    #: charge pump); only active when ``recharge_resistance_ohm > 0``
    bias_voltage_v: float = 0.0
    #: resistance of the replenishment path; 0 disables it (strict
    #: charge-constrained operation, the plate charge is one-shot)
    recharge_resistance_ohm: float = 0.0

    def __post_init__(self) -> None:
        checks = (
            ("proof_mass_kg", self.proof_mass_kg),
            ("spring_stiffness", self.spring_stiffness),
            ("plate_area_m2", self.plate_area_m2),
            ("nominal_gap_m", self.nominal_gap_m),
        )
        for label, value in checks:
            if value <= 0.0:
                raise ConfigurationError(f"{label} must be positive, got {value}")
        if self.parasitic_damping < 0.0:
            raise ConfigurationError("parasitic damping must be non-negative")
        if self.bias_charge_c < 0.0:
            raise ConfigurationError("bias charge must be non-negative")
        if self.series_resistance_ohm < 0.0:
            raise ConfigurationError("series resistance must be non-negative")
        if self.bias_voltage_v < 0.0:
            raise ConfigurationError("bias voltage must be non-negative")
        if self.recharge_resistance_ohm < 0.0:
            raise ConfigurationError("recharge resistance must be non-negative")

    @property
    def untuned_frequency_hz(self) -> float:
        """Mechanical resonant frequency."""
        return math.sqrt(self.spring_stiffness / self.proof_mass_kg) / (2.0 * math.pi)

    @property
    def nominal_capacitance_f(self) -> float:
        """Capacitance at the rest position."""
        return _EPSILON_0 * self.plate_area_m2 / self.nominal_gap_m


class ElectrostaticMicrogenerator(AnalogueBlock):
    """Gap-closing electrostatic harvester (no analytic linearisation)."""

    def __init__(
        self,
        params: ElectrostaticParameters,
        acceleration: Callable[[float], float],
        name: str = "electrostatic",
    ) -> None:
        super().__init__(
            name,
            state_names=("z", "velocity", "charge"),
            terminal_names=("Vm", "Im"),
            terminal_kinds=("voltage", "current"),
            n_algebraic=1,
        )
        self.params = params
        self._acceleration = acceleration

    def _gap(self, z: float) -> float:
        # limit the travel so the plates never touch (mechanical stoppers)
        p = self.params
        return max(p.nominal_gap_m - z, 0.05 * p.nominal_gap_m)

    def _capacitor_voltage(self, z: float, q: float) -> float:
        return q * self._gap(z) / (_EPSILON_0 * self.params.plate_area_m2)

    def derivatives(self, t: float, x: np.ndarray, y: np.ndarray) -> np.ndarray:
        p = self.params
        z, v, q = x
        _vm, im = y
        electrostatic_force = q * q / (2.0 * _EPSILON_0 * p.plate_area_m2)
        acceleration = (
            -p.spring_stiffness * z
            - p.parasitic_damping * v
            - electrostatic_force
            + p.proof_mass_kg * float(self._acceleration(t))
        ) / p.proof_mass_kg
        # Im delivered into the load drains the plates; the bias path (when
        # enabled) restores charge towards the bias voltage
        dq = -im
        if p.recharge_resistance_ohm > 0.0:
            dq += (
                p.bias_voltage_v - self._capacitor_voltage(z, q)
            ) / p.recharge_resistance_ohm
        return np.array([v, acceleration, dq])

    def algebraic_residual(self, t: float, x: np.ndarray, y: np.ndarray) -> np.ndarray:
        p = self.params
        z, _v, q = x
        vm, im = y
        capacitor_voltage = self._capacitor_voltage(z, q)
        return np.array([vm - capacitor_voltage + p.series_resistance_ohm * im])

    def initial_state(self) -> np.ndarray:
        # pre-charged plates at rest
        return np.array([0.0, 0.0, self.params.bias_charge_c])

    # ------------------------------------------------------------------ #
    # batched (lane-parallel) evaluation
    # ------------------------------------------------------------------ #
    def evaluate_batch(
        self,
        lanes: Sequence[AnalogueBlock],
        t: float,
        x: np.ndarray,
        y: np.ndarray,
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Vectorised model equations for ``B`` lanes of harvesters.

        Mirrors :meth:`derivatives`/:meth:`algebraic_residual` element-wise
        (same expression order, ``np.maximum`` for the travel stopper), so
        the batched finite-difference linearisation built on top of it is
        bit-identical to each lane's scalar central-difference Jacobians.
        Only the base acceleration goes through the lanes' scalar sources.
        """
        mass = np.array([lane.params.proof_mass_kg for lane in lanes])
        stiffness = np.array([lane.params.spring_stiffness for lane in lanes])
        damping = np.array([lane.params.parasitic_damping for lane in lanes])
        area = np.array([lane.params.plate_area_m2 for lane in lanes])
        gap0 = np.array([lane.params.nominal_gap_m for lane in lanes])
        r_series = np.array([lane.params.series_resistance_ohm for lane in lanes])
        r_recharge = np.array([lane.params.recharge_resistance_ohm for lane in lanes])
        v_bias = np.array([lane.params.bias_voltage_v for lane in lanes])
        accel = batch_acceleration([lane._acceleration for lane in lanes], t)

        z, v, q = x[:, 0], x[:, 1], x[:, 2]
        vm, im = y[:, 0], y[:, 1]

        gap = np.maximum(gap0 - z, 0.05 * gap0)
        v_cap = q * gap / (_EPSILON_0 * area)

        electrostatic_force = q * q / (2.0 * _EPSILON_0 * area)
        acceleration = (
            -stiffness * z - damping * v - electrostatic_force + mass * accel
        ) / mass
        dq = -im
        recharge = r_recharge > 0.0
        if np.any(recharge):
            # np.where (not an unconditional add) so lanes without a
            # replenishment path keep the exact scalar value of ``-Im``
            term = (v_bias - v_cap) / np.where(recharge, r_recharge, 1.0)
            dq = np.where(recharge, dq + term, dq)
        dxdt = np.stack([v, acceleration, dq], axis=1)
        res_y = (vm - v_cap + r_series * im)[:, None]
        return dxdt, res_y

    def linearise_batch(
        self,
        lanes: Sequence[AnalogueBlock],
        t: float,
        x: np.ndarray,
        y: np.ndarray,
    ) -> BatchedLinearisation:
        """Batched finite-difference linearisation (no analytic Jacobians).

        The terminal relation is genuinely nonlinear, so — exactly like the
        scalar path — the block hands linearisation to the solver's
        central-difference machinery; here the batched variant, which
        perturbs each coordinate across all lanes at once through
        :meth:`evaluate_batch`.
        """
        from ..core.linearise import linearise_lanes_numerically

        return linearise_lanes_numerically(lanes, t, x, y)
