"""Batched vs scalar block equivalence (the lane-parallel contract).

Property-style check: for every registered stock analogue block, the
batched linearisation of ``B`` parameter-varied lanes must stack exactly
the per-lane scalar linearisations — bit-identical, not merely close —
at randomised operating points.  This is the contract the batched
solver's fixed-step byte-identity rests on, and it covers both the
vectorised ports (electromagnetic generator, Dickson multiplier,
supercapacitor) and the generic fallbacks (piezoelectric via
loop-over-lanes stacking, electrostatic via the batched finite-difference
sweep of :mod:`repro.core.linearise`).
"""

import math

import numpy as np
import pytest

from repro.core.block import BatchedLinearisation, LinearBlock
from repro.core.builder import BuildContext
from repro.core.linearise import (
    linearise_block,
    linearise_block_lanes,
    linearise_lanes_numerically,
)
from repro.core.registry import BLOCK_REGISTRY

BLOCK_REGISTRY.ensure_default_library()

N_LANES = 5


def _lane_accelerations(rng):
    """Per-lane sinusoidal excitations with distinct frequency/amplitude."""
    sources = []
    for _ in range(N_LANES):
        freq = float(rng.uniform(40.0, 90.0))
        amp = float(rng.uniform(0.2, 1.0))
        sources.append(
            lambda t, f=freq, a=amp: a * math.sin(2.0 * math.pi * f * t)
        )
    return sources


def _jitter(rng, value, spread=0.4):
    """Multiplicative per-lane perturbation of a positive base value."""
    return float(value * (1.0 + spread * (rng.random() - 0.5)))


def _build_lanes(key, rng, param_fn):
    accelerations = _lane_accelerations(rng)
    lanes = []
    for i in range(N_LANES):
        context = BuildContext(acceleration=accelerations[i])
        lanes.append(
            BLOCK_REGISTRY.create(key, "block", param_fn(rng, i), context)
        )
    return lanes


def _lane_params(key, rng, i):
    """Randomised per-lane parameters for each registered stock block."""
    if key == "electromagnetic_generator":
        return {
            "proof_mass_kg": _jitter(rng, 0.05),
            "parasitic_damping": _jitter(rng, 0.1),
            "spring_stiffness": _jitter(rng, 9000.0),
            "flux_linkage": _jitter(rng, 14.0),
            "coil_resistance": _jitter(rng, 1500.0),
            "coil_inductance": _jitter(rng, 1.0),
            "buckling_load_n": _jitter(rng, 4.5),
            "initial_tuning_force_n": float(rng.uniform(0.0, 3.0)),
        }
    if key == "piezoelectric_generator":
        return {
            "proof_mass_kg": _jitter(rng, 0.008),
            "spring_stiffness": _jitter(rng, 1500.0),
            "series_resistance_ohm": float(rng.uniform(0.0, 100.0)),
        }
    if key == "electrostatic_generator":
        # odd lanes exercise the bias-replenishment + series-R path, even
        # lanes the strict charge-constrained model
        return {
            "proof_mass_kg": _jitter(rng, 0.002),
            "spring_stiffness": _jitter(rng, 400.0),
            "plate_area_m2": _jitter(rng, 4e-4),
            "nominal_gap_m": _jitter(rng, 100e-6),
            "bias_charge_c": _jitter(rng, 2e-8),
            "series_resistance_ohm": 1e6 if i % 2 else 0.0,
            "bias_voltage_v": 5.0 if i % 2 else 0.0,
            "recharge_resistance_ohm": 2e6 if i % 2 else 0.0,
        }
    if key == "dickson_multiplier":
        return {
            "stage_capacitance_f": _jitter(rng, 10e-6),
            "output_capacitance_f": _jitter(rng, 220e-6),
            "input_capacitance_f": _jitter(rng, 0.1e-6),
        }
    if key == "supercapacitor":
        return {
            "immediate_resistance_ohm": _jitter(rng, 2.5),
            "immediate_capacitance_f": _jitter(rng, 0.9),
            "delayed_resistance_ohm": _jitter(rng, 90.0),
            "leakage_resistance_ohm": 5000.0 if i % 2 else 0.0,
            "initial_voltage_v": float(rng.uniform(0.0, 4.0)),
            "load_awake_ohm": _jitter(rng, 33.0),
        }
    raise AssertionError(f"no lane parameters defined for {key!r}")


def _operating_points(rng, block):
    x = rng.standard_normal((N_LANES, block.n_states)) * 0.5
    y = rng.standard_normal((N_LANES, block.n_terminals)) * 0.5
    return x, y


def _assert_stacks_equal(batched, lanes, t, x, y):
    """Batched linearisation must equal per-lane scalar results exactly."""
    assert isinstance(batched, BatchedLinearisation)
    rep = lanes[0]
    batched.validate(len(lanes), rep.n_states, rep.n_terminals, rep.n_algebraic)
    for i, lane in enumerate(lanes):
        scalar = linearise_block(lane, t, x[i], y[i])
        for attr in ("jxx", "jxy", "ex", "jyx", "jyy", "ey"):
            got = getattr(batched, attr)[i]
            want = getattr(scalar, attr)
            assert np.array_equal(got, want), (
                f"{type(lane).__name__}.{attr} lane {i}: batched != scalar "
                f"(max abs diff {np.max(np.abs(got - want))})"
            )


STOCK_ANALOGUE_KEYS = sorted(BLOCK_REGISTRY.keys(role="analogue"))


def test_all_stock_analogue_blocks_are_covered():
    # the parameterised test below must enumerate the full stock library;
    # a newly registered analogue block has to be added to _lane_params
    assert STOCK_ANALOGUE_KEYS == [
        "dickson_multiplier",
        "electromagnetic_generator",
        "electrostatic_generator",
        "piezoelectric_generator",
        "supercapacitor",
    ]


@pytest.mark.parametrize("key", STOCK_ANALOGUE_KEYS)
@pytest.mark.parametrize("seed", [0, 1, 2])
def test_linearise_batch_stacks_scalar_linearise(key, seed):
    rng = np.random.default_rng(seed)
    lanes = _build_lanes(key, rng, lambda r, i: _lane_params(key, r, i))
    x, y = _operating_points(rng, lanes[0])
    t = float(rng.uniform(0.0, 0.05))
    batched = linearise_block_lanes(lanes, t, x, y)
    _assert_stacks_equal(batched, lanes, t, x, y)


@pytest.mark.parametrize("key", STOCK_ANALOGUE_KEYS)
def test_evaluate_batch_stacks_scalar_evaluation(key):
    rng = np.random.default_rng(7)
    lanes = _build_lanes(key, rng, lambda r, i: _lane_params(key, r, i))
    x, y = _operating_points(rng, lanes[0])
    t = 0.0123
    dxdt, res_y = lanes[0].evaluate_batch(lanes, t, x, y)
    assert dxdt.shape == (N_LANES, lanes[0].n_states)
    assert res_y.shape == (N_LANES, lanes[0].n_algebraic)
    for i, lane in enumerate(lanes):
        assert np.array_equal(dxdt[i], lane.derivatives(t, x[i], y[i]))
        if lane.n_algebraic:
            assert np.array_equal(
                res_y[i], lane.algebraic_residual(t, x[i], y[i])
            )


def test_electrostatic_batched_fd_matches_scalar_fd():
    # the electrostatic block has no analytic linearise: the batched path
    # must go through the vectorised finite-difference sweep and still be
    # bit-identical to each lane's scalar central differences
    rng = np.random.default_rng(3)
    lanes = _build_lanes(
        "electrostatic_generator",
        rng,
        lambda r, i: _lane_params("electrostatic_generator", r, i),
    )
    assert all(
        lane.linearise(0.0, np.zeros(3), np.zeros(2)) is None for lane in lanes
    )
    x, y = _operating_points(rng, lanes[0])
    # use plate-charge-scaled states so the relative FD step paths (both
    # |x| < 1 and |x| > 1) are exercised
    x[:, 2] = rng.uniform(0.5, 2.0, size=N_LANES) * 2e-8
    batched = linearise_lanes_numerically(lanes, 0.01, x, y)
    _assert_stacks_equal(batched, lanes, 0.01, x, y)


def test_dickson_mixed_diode_tables_take_the_lane_loop():
    # lanes with different diode parameters cannot share one companion
    # table; the batched linearisation must still stack the scalar results
    rng = np.random.default_rng(11)
    params = []
    for i in range(N_LANES):
        p = _lane_params("dickson_multiplier", rng, i)
        p["diode_saturation_current_a"] = float(1e-8 * (1 + i))
        params.append(p)
    lanes = _build_lanes("dickson_multiplier", rng, lambda r, i: params[i])
    tables = {id(lane.companion_table) for lane in lanes}
    assert len(tables) == N_LANES
    x, y = _operating_points(rng, lanes[0])
    batched = linearise_block_lanes(lanes, 0.0, x, y)
    _assert_stacks_equal(batched, lanes, 0.0, x, y)


def test_linear_block_batched_port():
    rng = np.random.default_rng(5)
    lanes = []
    for i in range(3):
        a = -np.diag(rng.uniform(1.0, 5.0, size=2))
        b = rng.standard_normal((2, 1))
        c = rng.standard_normal((1, 2))
        d = rng.standard_normal((1, 1)) + 2.0
        lanes.append(
            LinearBlock(
                "lin",
                a,
                b,
                state_names=("s0", "s1"),
                terminal_names=("p",),
                c=c,
                d=d,
                excitation=lambda t, k=i: np.array([math.sin(t + k), 0.0]),
            )
        )
    x = rng.standard_normal((3, 2))
    y = rng.standard_normal((3, 1))
    batched = linearise_block_lanes(lanes, 0.2, x, y)
    _assert_stacks_equal(batched, lanes, 0.2, x, y)
