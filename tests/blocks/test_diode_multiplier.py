"""Tests for the diode model, its companion table and the Dickson multiplier."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.blocks.diode import DiodeParameters, ShockleyDiode, build_diode_companion_table
from repro.blocks.voltage_multiplier import DicksonMultiplier
from repro.core.errors import ConfigurationError
from repro.core.linearise import linearise_block_numerically


class TestShockleyDiode:
    def test_parameter_validation(self):
        with pytest.raises(ConfigurationError):
            DiodeParameters(saturation_current_a=0.0)
        with pytest.raises(ConfigurationError):
            DiodeParameters(thermal_voltage_v=-1.0)
        with pytest.raises(ConfigurationError):
            DiodeParameters(series_resistance_ohm=0.0)

    def test_zero_bias_zero_current(self):
        diode = ShockleyDiode()
        assert diode.current(0.0) == pytest.approx(0.0, abs=1e-12)

    def test_forward_conduction_and_reverse_blocking(self):
        diode = ShockleyDiode()
        assert diode.current(0.7) > 1e-4
        assert abs(diode.current(-5.0)) < 1e-7

    def test_series_resistance_limits_current(self):
        weak = ShockleyDiode(DiodeParameters(series_resistance_ohm=1000.0))
        strong = ShockleyDiode(DiodeParameters(series_resistance_ohm=10.0))
        assert weak.current(1.0) < strong.current(1.0)
        # at high forward bias the current approaches (V - Vknee)/Rs
        assert weak.current(5.0) == pytest.approx((5.0 - 0.55) / 1000.0, rel=0.25)

    def test_conductance_is_derivative(self):
        diode = ShockleyDiode()
        v = 0.55
        dv = 1e-6
        numeric = (diode.current(v + dv) - diode.current(v - dv)) / (2 * dv)
        assert diode.conductance(v) == pytest.approx(numeric, rel=1e-3)

    def test_companion_model_matches_current(self):
        diode = ShockleyDiode()
        g, j = diode.companion(0.6)
        assert g * 0.6 + j == pytest.approx(diode.current(0.6), rel=1e-9)

    @given(st.floats(min_value=-10.0, max_value=1.5))
    @settings(max_examples=60, deadline=None)
    def test_current_is_monotonic(self, v):
        diode = ShockleyDiode()
        assert diode.current(v + 1e-3) >= diode.current(v) - 1e-15


class TestCompanionTable:
    def test_table_matches_exact_model_at_breakpoints(self):
        params = DiodeParameters()
        table = build_diode_companion_table(params, v_min=-5.0, v_max=2.0, n_points=256)
        diode = ShockleyDiode(params)
        for v in np.linspace(-4.0, 1.0, 21):
            assert table.branch_current(float(v)) == pytest.approx(
                diode.current(float(v)), rel=0.05, abs=1e-7
            )

    def test_granularity_improves_accuracy(self):
        params = DiodeParameters()
        diode = ShockleyDiode(params)
        coarse = build_diode_companion_table(params, n_points=32)
        fine = build_diode_companion_table(params, n_points=1024)
        v = 0.52
        err_coarse = abs(coarse.branch_current(v) - diode.current(v))
        err_fine = abs(fine.branch_current(v) - diode.current(v))
        assert err_fine <= err_coarse

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            build_diode_companion_table(v_min=1.0, v_max=0.0)
        with pytest.raises(ConfigurationError):
            build_diode_companion_table(n_points=4)


class TestDicksonMultiplier:
    def make_block(self, **kwargs):
        kwargs.setdefault("use_exact_diode_in_derivatives", False)
        return DicksonMultiplier(**kwargs)

    def test_structure(self):
        block = self.make_block(n_stages=5)
        assert block.n_states == 6  # Vin + V1..V5
        assert block.state_names[0] == "Vin"
        assert block.terminal_names == ("Vm", "Im", "Vc", "Ic")
        assert block.n_algebraic == 2

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            DicksonMultiplier(n_stages=1)
        with pytest.raises(ConfigurationError):
            DicksonMultiplier(stage_capacitance_f=[1e-6, 1e-6])  # wrong length
        with pytest.raises(ConfigurationError):
            DicksonMultiplier(stage_capacitance_f=-1.0)
        with pytest.raises(ConfigurationError):
            DicksonMultiplier(input_capacitance_f=0.0)

    def test_per_stage_capacitances(self):
        block = self.make_block(
            n_stages=3, stage_capacitance_f=[1e-6, 2e-6, 3e-6], output_capacitance_f=None
        )
        assert block.capacitances == pytest.approx([1e-6, 2e-6, 3e-6])

    def test_output_capacitance_override(self):
        block = self.make_block(n_stages=3, stage_capacitance_f=1e-6, output_capacitance_f=5e-5)
        assert block.capacitances[-1] == pytest.approx(5e-5)

    def test_algebraic_ties_terminals_to_states(self):
        block = self.make_block()
        x = np.zeros(block.n_states)
        x[0] = 0.7  # Vin
        x[-1] = 2.5  # V5
        residual = block.algebraic_residual(0.0, x, np.array([0.7, 0.0, 2.5, 0.0]))
        assert residual == pytest.approx([0.0, 0.0], abs=1e-12)

    def test_output_current_discharges_last_stage(self):
        block = self.make_block()
        x = np.zeros(block.n_states)
        dxdt = block.derivatives(0.0, x, np.array([0.0, 0.0, 0.0, 1e-3]))
        assert dxdt[-1] < 0.0  # drawing Ic out of the output capacitor

    def test_input_current_charges_input_node(self):
        block = self.make_block()
        x = np.zeros(block.n_states)
        dxdt = block.derivatives(0.0, x, np.array([0.0, 1e-3, 0.0, 0.0]))
        assert dxdt[0] > 0.0

    def test_analytic_linearisation_matches_finite_differences(self):
        block = self.make_block()
        rng = np.random.default_rng(7)
        x = rng.uniform(-0.4, 0.4, size=block.n_states)
        y = rng.uniform(-0.3, 0.3, size=4)
        analytic = block.linearise(0.0, x, y)
        numeric = linearise_block_numerically(block, 0.0, x, y, eps=1e-6)
        # the differential rows use the *tabulated* conductance as the
        # Jacobian (the paper's companion model), which differs from the
        # exact derivative of the piecewise-linear branch current by the
        # table's interpolation error; compare against the dominant scale of
        # the matrix rather than element-wise
        scale_xx = np.max(np.abs(numeric.jxx))
        assert np.max(np.abs(analytic.jxx - numeric.jxx)) <= 0.02 * scale_xx
        scale_xy = max(np.max(np.abs(numeric.jxy)), 1.0)
        assert np.max(np.abs(analytic.jxy - numeric.jxy)) <= 0.02 * scale_xy
        # the algebraic rows are exact tie equations
        assert analytic.jyx == pytest.approx(numeric.jyx, rel=1e-6, abs=1e-9)
        assert analytic.jyy == pytest.approx(numeric.jyy, rel=1e-6, abs=1e-9)

    def test_linearised_model_matches_nonlinear_at_expansion_point(self):
        block = self.make_block()
        x = np.linspace(-0.2, 0.5, block.n_states)
        y = np.array([0.1, 1e-4, 0.5, 2e-5])
        lin = block.linearise(0.0, x, y)
        model = lin.jxx @ x + lin.jxy @ y + lin.ex
        exact = block.derivatives(0.0, x, y)
        assert model == pytest.approx(exact, rel=1e-6, abs=1e-9)

    def test_ideal_gain_and_output_voltage_helpers(self):
        block = self.make_block(n_stages=4, output_capacitance_f=None)
        assert block.ideal_no_load_gain() == 4.0
        x = np.zeros(block.n_states)
        x[-1] = 3.3
        assert block.output_voltage(x) == pytest.approx(3.3)
