"""Tests for the vibration source, magnetic tuning law and linear actuator."""


import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.blocks.actuator import LinearActuator
from repro.blocks.tuning import MagneticTuningModel
from repro.blocks.vibration import FrequencyStep, MultiToneVibrationSource, VibrationSource
from repro.core.errors import ConfigurationError


class TestVibrationSource:
    def test_validation(self):
        with pytest.raises(ConfigurationError):
            VibrationSource(0.0, 1.0)
        with pytest.raises(ConfigurationError):
            VibrationSource(50.0, -1.0)
        with pytest.raises(ConfigurationError):
            VibrationSource(50.0, 1.0, [FrequencyStep(time=-1.0, frequency_hz=60.0)])

    def test_single_tone(self):
        source = VibrationSource(10.0, 2.0)
        assert source.frequency(0.0) == 10.0
        assert source.acceleration(0.025) == pytest.approx(2.0)  # quarter period

    def test_frequency_step_schedule(self):
        source = VibrationSource(
            70.0, 0.6, [FrequencyStep(time=1.0, frequency_hz=71.0, amplitude_ms2=0.8)]
        )
        assert source.frequency(0.5) == 70.0
        assert source.frequency(1.5) == 71.0
        assert source.amplitude(1.5) == 0.8
        assert source.step_times() == [1.0]

    def test_phase_continuity_at_step(self):
        source = VibrationSource(70.0, 1.0, [FrequencyStep(time=0.31, frequency_hz=80.0)])
        before = source.acceleration(0.31 - 1e-9)
        after = source.acceleration(0.31 + 1e-9)
        assert after == pytest.approx(before, abs=1e-4)

    def test_callable_protocol(self):
        source = VibrationSource(10.0, 1.0)
        assert source(0.0) == pytest.approx(source.acceleration(0.0))

    def test_multi_tone(self):
        source = MultiToneVibrationSource([(50.0, 0.1), (70.0, 0.5)])
        assert source.dominant_frequency() == 70.0
        assert source.frequency(1.0) == 70.0
        assert source.amplitude(0.0) == 0.5
        assert abs(source.acceleration(0.0)) < 1e-12
        with pytest.raises(ConfigurationError):
            MultiToneVibrationSource([])


class TestMagneticTuningModel:
    @pytest.fixture
    def model(self):
        return MagneticTuningModel(
            untuned_frequency_hz=64.0,
            buckling_load_n=4.5,
            force_constant=5.0e-12,
            exponent=4.0,
            min_gap_m=1.2e-3,
            max_gap_m=30e-3,
        )

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            MagneticTuningModel(0.0, 1.0, 1.0)
        with pytest.raises(ConfigurationError):
            MagneticTuningModel(64.0, 1.0, 1.0, min_gap_m=2.0, max_gap_m=1.0)

    def test_eq12_forward(self, model):
        # F_t = 3 F_b doubles the resonant frequency
        assert model.frequency_from_force(3 * 4.5) == pytest.approx(128.0)

    def test_force_frequency_roundtrip(self, model):
        force = model.force_for_frequency(70.0)
        assert model.frequency_from_force(force) == pytest.approx(70.0)

    def test_force_below_untuned_rejected(self, model):
        with pytest.raises(ConfigurationError):
            model.force_for_frequency(60.0)

    def test_gap_force_roundtrip(self, model):
        gap = model.gap_for_force(1.0)
        assert model.force_from_gap(gap) == pytest.approx(1.0)

    def test_gap_clipping(self, model):
        assert model.gap_for_force(0.0) == model.max_gap_m
        assert model.gap_for_force(1e9) == model.min_gap_m

    def test_frequency_decreases_with_gap(self, model):
        assert model.frequency_from_gap(1.5e-3) > model.frequency_from_gap(5e-3)

    def test_tuning_range_is_positive(self, model):
        f_min, f_max = model.frequency_range()
        assert f_min < f_max
        assert model.tuning_range_hz() == pytest.approx(f_max - f_min)
        # the practical design offers roughly a 14 Hz range
        assert 5.0 < model.tuning_range_hz() < 40.0

    @given(st.floats(min_value=64.5, max_value=78.0))
    @settings(max_examples=50, deadline=None)
    def test_gap_for_frequency_roundtrip(self, target):
        model = MagneticTuningModel(64.0, 4.5, 5.0e-12, min_gap_m=1e-3, max_gap_m=50e-3)
        gap = model.gap_for_frequency(target)
        assert model.frequency_from_gap(gap) == pytest.approx(target, rel=1e-6)


class TestLinearActuator:
    def test_validation(self):
        with pytest.raises(ConfigurationError):
            LinearActuator(speed_m_per_s=0.0, min_position_m=0.0, max_position_m=1.0)
        with pytest.raises(ConfigurationError):
            LinearActuator(speed_m_per_s=1.0, min_position_m=1.0, max_position_m=0.0)
        with pytest.raises(ConfigurationError):
            LinearActuator(
                speed_m_per_s=1.0, min_position_m=0.0, max_position_m=1.0, position_m=2.0
            )

    def test_defaults_to_max_position(self):
        actuator = LinearActuator(1e-3, 1e-3, 30e-3)
        assert actuator.position_m == pytest.approx(30e-3)

    def test_travel_time_and_motion(self):
        actuator = LinearActuator(2e-3, 0.0, 30e-3, position_m=10e-3)
        duration = actuator.command(20e-3, t=0.0)
        assert duration == pytest.approx(5.0)
        actuator.update(2.5)
        assert actuator.position_m == pytest.approx(15e-3)
        assert actuator.is_moving
        actuator.update(6.0)
        assert actuator.position_m == pytest.approx(20e-3)
        assert not actuator.is_moving

    def test_target_clipped_to_travel(self):
        actuator = LinearActuator(1e-3, 1e-3, 10e-3, position_m=5e-3)
        actuator.command(100.0, t=0.0)
        actuator.update(100.0)
        assert actuator.position_m == pytest.approx(10e-3)

    def test_energy_accounting(self):
        actuator = LinearActuator(1e-3, 0.0, 10e-3, position_m=0.0, supply_power_w=0.5)
        actuator.command(5e-3, t=0.0)
        actuator.update(10.0)  # move takes 5 s
        assert actuator.energy_consumed_j == pytest.approx(2.5)

    def test_cancel(self):
        actuator = LinearActuator(1e-3, 0.0, 10e-3, position_m=0.0)
        actuator.command(10e-3, t=0.0)
        actuator.update(1.0)
        actuator.cancel(1.0)
        assert not actuator.is_moving
        assert actuator.time_to_target() == 0.0

    def test_time_never_goes_backwards(self):
        actuator = LinearActuator(1e-3, 0.0, 10e-3)
        actuator.update(1.0)
        with pytest.raises(ConfigurationError):
            actuator.update(0.5)
