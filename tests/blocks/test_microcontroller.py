"""Tests for the microcontroller tuning process (the Fig. 7 state machine)."""

import pytest

from repro.blocks.actuator import LinearActuator
from repro.blocks.load import LoadProfile
from repro.blocks.microcontroller import ControllerSettings, ControllerState, TuningController
from repro.blocks.tuning import MagneticTuningModel
from repro.core.digital import AnalogueInterface
from repro.core.errors import ConfigurationError


class Plant:
    """Minimal fake analogue plant the controller can probe and drive."""

    def __init__(self, storage_voltage=3.5, ambient=71.0, resonant=70.0):
        self.storage_voltage = storage_voltage
        self.ambient = ambient
        self.resonant = resonant
        self.load_resistance = 1e9
        self.tuning_force = 0.0
        self.tuning_model = MagneticTuningModel(
            untuned_frequency_hz=64.0,
            buckling_load_n=4.5,
            force_constant=5e-12,
            min_gap_m=1e-3,
            max_gap_m=30e-3,
        )

    def interface(self):
        interface = AnalogueInterface()
        interface.register_probe("storage_voltage", lambda: self.storage_voltage)
        interface.register_probe("ambient_frequency", lambda: self.ambient)
        interface.register_probe("resonant_frequency", lambda: self.resonant)
        interface.register_control("load_resistance", self._set_load)
        interface.register_control("tuning_force", self._set_force)
        return interface

    def _set_load(self, value):
        self.load_resistance = value

    def _set_force(self, value):
        self.tuning_force = value
        # emulate the generator's Eq. 12 response so the controller sees the
        # resonant frequency move as the magnet travels
        self.resonant = self.tuning_model.frequency_from_force(value)


def make_controller(plant, **settings_overrides):
    settings = ControllerSettings(
        watchdog_period_s=1.0,
        wake_voltage_v=3.0,
        abort_voltage_v=1.0,
        frequency_tolerance_hz=0.25,
        measurement_duration_s=0.2,
        tuning_poll_interval_s=0.1,
    )
    for key, value in settings_overrides.items():
        setattr(settings, key, value)
    actuator = LinearActuator(
        speed_m_per_s=20e-3, min_position_m=1e-3, max_position_m=30e-3
    )
    return TuningController(
        tuning_model=plant.tuning_model,
        actuator=actuator,
        settings=settings,
        load_profile=LoadProfile(),
    )


class TestSettingsValidation:
    @pytest.mark.parametrize(
        "kwargs",
        [
            {"watchdog_period_s": 0.0},
            {"wake_voltage_v": -1.0},
            {"abort_voltage_v": 5.0},
            {"frequency_tolerance_hz": 0.0},
            {"measurement_duration_s": 0.0},
            {"tuning_poll_interval_s": 0.0},
        ],
    )
    def test_invalid(self, kwargs):
        settings = ControllerSettings(**kwargs)
        with pytest.raises(ConfigurationError):
            settings.validate()


class TestStateMachine:
    def test_stays_asleep_when_storage_is_low(self):
        plant = Plant(storage_voltage=1.0)
        controller = make_controller(plant)
        interface = plant.interface()
        delay = controller.execute(0.0, interface)
        assert delay == pytest.approx(1.0)  # full watchdog period
        assert controller.state is ControllerState.SLEEPING
        assert controller.n_wakeups == 1
        assert controller.n_measurements == 0
        assert plant.load_resistance == pytest.approx(1e9)

    def test_wakes_and_goes_back_to_sleep_when_frequencies_match(self):
        plant = Plant(storage_voltage=3.5, ambient=70.0, resonant=70.0)
        controller = make_controller(plant)
        interface = plant.interface()
        delay = controller.execute(0.0, interface)
        assert controller.state is ControllerState.MEASURING
        assert plant.load_resistance == pytest.approx(33.0)
        assert delay == pytest.approx(0.2)
        delay = controller.execute(0.2, interface)
        assert controller.state is ControllerState.SLEEPING
        assert plant.load_resistance == pytest.approx(1e9)
        assert controller.n_tunings_started == 0

    def test_full_tuning_cycle(self):
        plant = Plant(storage_voltage=3.5, ambient=71.0, resonant=70.0)
        controller = make_controller(plant)
        interface = plant.interface()
        t = 0.0
        delay = controller.execute(t, interface)
        t += delay
        delay = controller.execute(t, interface)  # measurement done -> start tuning
        assert controller.state is ControllerState.TUNING
        assert controller.n_tunings_started == 1
        assert plant.load_resistance == pytest.approx(16.7)
        # poll until the actuator arrives
        for _ in range(200):
            t += delay
            delay = controller.execute(t, interface)
            if controller.state is ControllerState.SLEEPING:
                break
        assert controller.state is ControllerState.SLEEPING
        assert controller.n_tunings_completed == 1
        assert plant.load_resistance == pytest.approx(1e9)
        # the plant was re-tuned to (roughly) the ambient frequency
        assert plant.resonant == pytest.approx(71.0, abs=0.3)
        assert len(controller.event_log) >= 3

    def test_tuning_aborts_when_storage_collapses(self):
        plant = Plant(storage_voltage=3.5, ambient=75.0, resonant=68.0)
        controller = make_controller(plant)
        interface = plant.interface()
        t = 0.0
        t += controller.execute(t, interface)
        delay = controller.execute(t, interface)
        assert controller.state is ControllerState.TUNING
        plant.storage_voltage = 0.5  # collapse below the abort threshold
        t += delay
        controller.execute(t, interface)
        assert controller.state is ControllerState.SLEEPING
        assert controller.n_tunings_aborted == 1
        assert plant.load_resistance == pytest.approx(1e9)

    def test_target_clamped_to_tuning_range(self):
        plant = Plant(storage_voltage=3.5, ambient=500.0, resonant=64.0)
        controller = make_controller(plant)
        interface = plant.interface()
        t = 0.0
        t += controller.execute(t, interface)
        controller.execute(t, interface)
        f_min, f_max = plant.tuning_model.frequency_range()
        assert controller._target_frequency_hz <= f_max + 1e-9
