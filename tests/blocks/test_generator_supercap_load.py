"""Tests for the microgenerator, supercapacitor, load profile and the
extension generator blocks (piezoelectric, electrostatic)."""

import math

import numpy as np
import pytest

from repro.blocks.electrostatic import ElectrostaticMicrogenerator, ElectrostaticParameters
from repro.blocks.load import LoadProfile, OperatingMode
from repro.blocks.microgenerator import ElectromagneticMicrogenerator, MicrogeneratorParameters
from repro.blocks.piezoelectric import PiezoelectricMicrogenerator, PiezoelectricParameters
from repro.blocks.supercapacitor import Supercapacitor, SupercapacitorParameters
from repro.core.errors import ConfigurationError
from repro.core.linearise import linearise_block_numerically


def make_params(**overrides):
    defaults = dict(
        untuned_frequency_hz=64.0,
        proof_mass_kg=0.018,
        quality_factor=120.0,
        flux_linkage=14.0,
        coil_resistance=1500.0,
        coil_inductance=1.0,
        buckling_load_n=4.5,
    )
    defaults.update(overrides)
    return MicrogeneratorParameters.from_frequency(**defaults)


class TestMicrogeneratorParameters:
    def test_from_frequency_roundtrip(self):
        params = make_params()
        assert params.untuned_frequency_hz == pytest.approx(64.0)
        assert params.quality_factor == pytest.approx(120.0)

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            MicrogeneratorParameters(0.0, 0.1, 1.0, 1.0, 1.0, 1.0, 1.0)
        with pytest.raises(ConfigurationError):
            make_params(quality_factor=-1.0)
        with pytest.raises(ConfigurationError):
            make_params(coil_inductance=0.0)


class TestElectromagneticMicrogenerator:
    def make_generator(self, **overrides):
        return ElectromagneticMicrogenerator(make_params(**overrides), lambda t: 0.6)

    def test_structure(self):
        gen = self.make_generator()
        assert gen.state_names == ("z", "velocity", "i_coil")
        assert gen.terminal_names == ("Vm", "Im")
        assert gen.n_algebraic == 1

    def test_tuning_raises_resonant_frequency(self):
        gen = self.make_generator()
        f0 = gen.resonant_frequency_hz
        gen.apply_control("tuning_force", 4.5)  # F_t = F_b doubles the stiffness
        assert gen.resonant_frequency_hz == pytest.approx(f0 * math.sqrt(2.0))

    def test_eq12_consistency(self):
        gen = self.make_generator()
        force = 2.0
        gen.apply_control("tuning_force", force)
        expected = make_params().untuned_frequency_hz * math.sqrt(1.0 + force / 4.5)
        assert gen.resonant_frequency_hz == pytest.approx(expected)

    def test_negative_tuning_force_rejected(self):
        with pytest.raises(ConfigurationError):
            self.make_generator().apply_control("tuning_force", -1.0)

    def test_unknown_control_rejected(self):
        with pytest.raises(ConfigurationError):
            self.make_generator().apply_control("unknown", 1.0)

    def test_algebraic_residual_is_im_equals_coil_current(self):
        gen = self.make_generator()
        residual = gen.algebraic_residual(
            0.0, np.array([0.0, 0.0, 1.5e-3]), np.array([0.0, 1.5e-3])
        )
        assert residual[0] == pytest.approx(0.0, abs=1e-15)

    def test_analytic_linearisation_matches_finite_differences(self):
        gen = self.make_generator()
        gen.apply_control("tuning_force", 1.0)
        x = np.array([1e-4, 0.05, 2e-4])
        y = np.array([0.3, 2e-4])
        analytic = gen.linearise(0.0, x, y)
        numeric = linearise_block_numerically(gen, 0.0, x, y)
        assert analytic.jxx == pytest.approx(numeric.jxx, rel=1e-4, abs=1e-6)
        assert analytic.jxy == pytest.approx(numeric.jxy, rel=1e-4, abs=1e-6)
        assert analytic.jyx == pytest.approx(numeric.jyx, rel=1e-4, abs=1e-9)
        assert analytic.jyy == pytest.approx(numeric.jyy, rel=1e-4, abs=1e-9)

    def test_derived_quantities(self):
        gen = self.make_generator()
        assert gen.electromagnetic_voltage(0.1) == pytest.approx(1.4)
        assert gen.electromagnetic_force(1e-3) == pytest.approx(0.014)
        assert gen.output_power(2.0, 1e-3) == pytest.approx(2e-3)

    def test_excitation_enters_acceleration_row(self):
        gen = ElectromagneticMicrogenerator(make_params(), lambda t: 1.0)
        dxdt = gen.derivatives(0.0, np.zeros(3), np.zeros(2))
        assert dxdt[1] == pytest.approx(1.0)  # F_a / m = a
        assert dxdt[0] == 0.0 and dxdt[2] == 0.0

    def test_tuning_model_factory(self):
        gen = self.make_generator()
        model = gen.make_tuning_model(force_constant=5e-12)
        assert model.untuned_frequency_hz == pytest.approx(64.0)


class TestSupercapacitor:
    def test_parameter_validation(self):
        with pytest.raises(ConfigurationError):
            SupercapacitorParameters(immediate_capacitance_f=0.0)
        with pytest.raises(ConfigurationError):
            SupercapacitorParameters(leakage_resistance_ohm=-5.0)
        with pytest.raises(ConfigurationError):
            Supercapacitor(initial_voltage_v=-1.0)

    def test_total_capacitance(self):
        params = SupercapacitorParameters(
            immediate_capacitance_f=1.0, delayed_capacitance_f=0.5, longterm_capacitance_f=0.25
        )
        assert params.total_capacitance_f == pytest.approx(1.75)

    def test_initial_state_precharge(self):
        cap = Supercapacitor(initial_voltage_v=3.5)
        assert cap.initial_state() == pytest.approx([3.5, 3.5, 3.5])

    def test_mode_switching_follows_eq16(self):
        cap = Supercapacitor()
        assert cap.load_resistance == pytest.approx(1.0e9)
        cap.set_mode(OperatingMode.AWAKE)
        assert cap.load_resistance == pytest.approx(33.0)
        cap.apply_control("load_resistance", 16.7)
        assert cap.operating_mode is OperatingMode.TUNING
        with pytest.raises(ConfigurationError):
            cap.apply_control("load_resistance", -1.0)

    def test_derivatives_charge_towards_terminal_voltage(self):
        cap = Supercapacitor()
        dxdt = cap.derivatives(0.0, np.zeros(3), np.array([1.0, 0.0]))
        assert np.all(dxdt > 0.0)

    def test_terminal_kcl_residual(self):
        cap = Supercapacitor()
        x = np.array([1.0, 1.0, 1.0])
        vc = 1.0
        # with all internal voltages equal to Vc the only current is the load
        expected_ic = vc / cap.load_resistance
        residual = cap.algebraic_residual(0.0, x, np.array([vc, expected_ic]))
        assert residual[0] == pytest.approx(0.0, abs=1e-12)

    def test_linearisation_matches_finite_differences(self):
        cap = Supercapacitor(
            params=SupercapacitorParameters(leakage_resistance_ohm=1e5),
            initial_voltage_v=2.0,
        )
        x = np.array([2.0, 1.9, 1.8])
        y = np.array([2.05, 1e-4])
        analytic = cap.linearise(0.0, x, y)
        numeric = linearise_block_numerically(cap, 0.0, x, y)
        assert analytic.jxx == pytest.approx(numeric.jxx, rel=1e-5, abs=1e-9)
        assert analytic.jxy == pytest.approx(numeric.jxy, rel=1e-5, abs=1e-9)
        assert analytic.jyy == pytest.approx(numeric.jyy, rel=1e-5, abs=1e-9)

    def test_stored_energy(self):
        params = SupercapacitorParameters(
            immediate_capacitance_f=1.0, delayed_capacitance_f=1.0, longterm_capacitance_f=1.0
        )
        cap = Supercapacitor(params=params)
        assert cap.stored_energy_j([2.0, 0.0, 0.0]) == pytest.approx(2.0)

    def test_terminal_voltage_helper(self):
        cap = Supercapacitor(initial_voltage_v=3.0)
        x = np.array([3.0, 3.0, 3.0])
        assert cap.terminal_voltage(x, ic=0.0) == pytest.approx(3.0, rel=1e-6)


class TestLoadProfile:
    def test_eq16_defaults(self):
        profile = LoadProfile()
        assert profile.resistance(OperatingMode.SLEEP) == pytest.approx(1.0e9)
        assert profile.resistance(OperatingMode.AWAKE) == pytest.approx(33.0)
        assert profile.resistance(OperatingMode.TUNING) == pytest.approx(16.7)

    def test_power(self):
        profile = LoadProfile()
        assert profile.power_at(OperatingMode.AWAKE, 3.3) == pytest.approx(3.3**2 / 33.0)

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            LoadProfile(sleep_ohm=0.0)


class TestExtensionGenerators:
    def test_piezo_structure_and_linearisation(self):
        piezo = PiezoelectricMicrogenerator(PiezoelectricParameters(), lambda t: 0.5)
        assert piezo.n_algebraic == 1
        x = np.array([1e-4, 0.02, 1.5])
        y = np.array([1.5, 1e-5])
        analytic = piezo.linearise(0.0, x, y)
        numeric = linearise_block_numerically(piezo, 0.0, x, y)
        assert analytic.jxx == pytest.approx(numeric.jxx, rel=1e-4, abs=1e-5)
        assert analytic.jyy == pytest.approx(numeric.jyy, rel=1e-4, abs=1e-9)

    def test_piezo_tuning_interface(self):
        piezo = PiezoelectricMicrogenerator(PiezoelectricParameters(), lambda t: 0.0)
        f0 = piezo.resonant_frequency_hz
        piezo.apply_control("tuning_force", PiezoelectricParameters().buckling_load_n)
        assert piezo.resonant_frequency_hz == pytest.approx(f0 * math.sqrt(2.0))
        with pytest.raises(ConfigurationError):
            piezo.apply_control("tuning_force", -1.0)

    def test_piezo_validation(self):
        with pytest.raises(ConfigurationError):
            PiezoelectricParameters(clamp_capacitance_f=0.0)

    def test_electrostatic_uses_numeric_fallback(self):
        block = ElectrostaticMicrogenerator(ElectrostaticParameters(), lambda t: 0.5)
        assert block.linearise(0.0, block.initial_state(), np.zeros(2)) is None
        x0 = block.initial_state()
        assert x0[2] == pytest.approx(ElectrostaticParameters().bias_charge_c)

    def test_electrostatic_terminal_voltage_relation(self):
        params = ElectrostaticParameters()
        block = ElectrostaticMicrogenerator(params, lambda t: 0.0)
        x = block.initial_state()
        vm_expected = params.bias_charge_c * params.nominal_gap_m / (
            8.8541878128e-12 * params.plate_area_m2
        )
        residual = block.algebraic_residual(0.0, x, np.array([vm_expected, 0.0]))
        assert residual[0] == pytest.approx(0.0, abs=1e-9)

    def test_electrostatic_validation(self):
        with pytest.raises(ConfigurationError):
            ElectrostaticParameters(plate_area_m2=0.0)
