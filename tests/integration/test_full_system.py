"""End-to-end integration tests of the complete harvester model.

These tests run short simulated windows (fractions of a second) so the
whole suite stays fast while still exercising every block, the digital
controller and all three solver families on the assembled system.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.power import average_power
from repro.analysis.waveforms import compare_traces
from repro.baselines.implicit_solver import ImplicitSolverSettings
from repro.baselines.reference import ReferenceSolver, ReferenceSolverSettings
from repro.core.integrators import AdamsBashforth, RungeKutta4
from repro.harvester.config import paper_harvester
from repro.harvester.scenarios import (
    charging_scenario,
    run_baseline,
    run_proposed,
    run_reference,
    scenario_1,
)
from repro.harvester.system import TunableEnergyHarvester


@pytest.fixture(scope="module")
def short_charging_result():
    """One shared short charging run used by several assertions."""
    return run_proposed(charging_scenario(duration_s=0.4))


class TestProposedSolverOnFullSystem:
    def test_charging_run_is_physical(self, short_charging_result):
        result = short_charging_result
        # every recorded waveform stays finite
        for name in result.trace_names():
            assert np.all(np.isfinite(result[name].values)), name
        # the generator oscillates and delivers positive average power
        power = average_power(result["generator_power"], 0.2, 0.4)
        assert power > 1e-6
        # the storage element charges (slowly) and never goes negative
        storage = result["storage_voltage"].values
        assert storage[-1] > storage[0]
        assert np.min(storage) >= -1e-6

    def test_displacement_stays_in_sub_millimetre_range(self, short_charging_result):
        z = short_charging_result["generator.z"].values
        assert np.max(np.abs(z)) < 5e-3

    def test_step_size_resolves_the_vibration_period(self, short_charging_result):
        stats = short_charging_result.stats
        assert stats.max_step <= 1.0 / (40 * 70.0) + 1e-12
        assert stats.n_accepted_steps > 500

    def test_rk4_and_ab3_agree(self):
        scenario = charging_scenario(duration_s=0.15)
        ab = run_proposed(scenario, integrator=AdamsBashforth(order=3))
        rk = run_proposed(scenario, integrator=RungeKutta4())
        comparison = compare_traces(ab["multiplier.Vin"], rk["multiplier.Vin"])
        assert comparison.normalised_rms_error < 0.05

    def test_matches_scipy_reference(self):
        scenario = charging_scenario(duration_s=0.2)
        proposed = run_proposed(scenario)
        reference = run_reference(
            scenario,
            settings=ReferenceSolverSettings(rtol=1e-7, atol=1e-9, max_step=5e-4),
        )
        for trace_name in ("generator.z", "multiplier.Vin", "storage_voltage"):
            comparison = compare_traces(reference[trace_name], proposed[trace_name])
            assert comparison.normalised_rms_error < 0.08, trace_name
        # correlation of the oscillating input voltage should be high
        assert compare_traces(
            reference["multiplier.Vin"], proposed["multiplier.Vin"]
        ).correlation > 0.98


class TestClosedLoopTuning:
    def test_scenario_1_retunes_the_generator(self):
        result = run_proposed(scenario_1(duration_s=2.0, shift_time_s=0.3))
        assert result.metadata["n_tunings_completed"] >= 1
        assert result["resonant_frequency"].final() == pytest.approx(71.0, abs=0.3)
        assert result["ambient_frequency"].final() == pytest.approx(71.0)
        # the load resistance returned to the sleep value at the end
        assert result["load_resistance"].final() == pytest.approx(1e9)

    def test_controller_does_nothing_when_storage_is_empty(self):
        config = paper_harvester().with_initial_storage_voltage(0.5)
        scenario = scenario_1(duration_s=1.3, shift_time_s=0.2)
        scenario = type(scenario)(
            name=scenario.name,
            description=scenario.description,
            config=config.with_excitation(70.0),
            duration_s=scenario.duration_s,
            frequency_steps=scenario.frequency_steps,
            with_controller=True,
        )
        result = run_proposed(scenario)
        assert result.metadata["n_tunings_completed"] == 0
        assert result["resonant_frequency"].final() == pytest.approx(70.0, abs=0.1)


class TestBaselineComparison:
    def test_newton_raphson_baseline_agrees_and_is_slower(self):
        scenario = charging_scenario(duration_s=0.04)
        proposed = run_proposed(scenario)
        baseline = run_baseline(
            scenario,
            settings=ImplicitSolverSettings(step_size=2e-4, record_interval=1e-3),
        )
        comparison = compare_traces(baseline["multiplier.Vin"], proposed["multiplier.Vin"])
        assert comparison.normalised_rms_error < 0.1
        # normalised CPU cost: the proposed technique must win clearly
        proposed_cost = proposed.stats.cpu_time_s / proposed.stats.final_time
        baseline_cost = baseline.stats.cpu_time_s / baseline.stats.final_time
        assert baseline_cost > 3.0 * proposed_cost

    def test_reference_solver_mirrors_probe_api(self):
        harvester = TunableEnergyHarvester(with_controller=False)
        solver = ReferenceSolver(
            harvester.assembler,
            settings=ReferenceSolverSettings(max_step=1e-3, record_interval=2e-3),
        )
        harvester._wire(solver)
        result = solver.run(0.02)
        assert "generator_power" in result.traces
        assert solver.current_time == pytest.approx(0.02)


class TestScalingProperties:
    @given(st.floats(min_value=0.2, max_value=1.2))
    @settings(max_examples=3, deadline=None)
    def test_output_scales_with_excitation_amplitude(self, amplitude):
        """Larger excitation never produces less generator output voltage."""
        config = paper_harvester().with_excitation(70.0, amplitude)
        scenario = charging_scenario(duration_s=0.1)
        scenario = type(scenario)(
            name="scaled",
            description="",
            config=config.with_initial_storage_voltage(0.0),
            duration_s=0.1,
            frequency_steps=(),
            with_controller=False,
        )
        result = run_proposed(scenario)
        peak = float(np.max(np.abs(result["multiplier.Vin"].values)))
        baseline_config = paper_harvester().with_excitation(70.0, 0.1)
        baseline_scenario = type(scenario)(
            name="baseline",
            description="",
            config=baseline_config.with_initial_storage_voltage(0.0),
            duration_s=0.1,
            frequency_steps=(),
            with_controller=False,
        )
        baseline_peak = float(
            np.max(np.abs(run_proposed(baseline_scenario)["multiplier.Vin"].values))
        )
        assert peak >= baseline_peak * 0.9
