"""Tests for the harvester configuration, system assembly and scenarios."""

import dataclasses

import pytest

from repro.core.errors import ConfigurationError
from repro.harvester.config import (
    ExcitationConfig,
    TuningMechanismConfig,
    paper_harvester,
)
from repro.harvester.scenarios import charging_scenario, scenario_1, scenario_2
from repro.harvester.system import TunableEnergyHarvester, default_solver_settings


class TestHarvesterConfig:
    def test_defaults_are_valid(self):
        config = paper_harvester()
        assert config.generator.untuned_frequency_hz == pytest.approx(64.0)
        assert config.multiplier_stages == 5
        assert config.load_profile.tuning_ohm == pytest.approx(16.7)

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            dataclasses.replace(paper_harvester(), multiplier_stages=1)
        with pytest.raises(ConfigurationError):
            dataclasses.replace(paper_harvester(), initial_storage_voltage_v=-1.0)
        with pytest.raises(ConfigurationError):
            dataclasses.replace(paper_harvester(), initial_tuned_frequency_hz=10.0)
        with pytest.raises(ConfigurationError):
            ExcitationConfig(frequency_hz=0.0)
        with pytest.raises(ConfigurationError):
            TuningMechanismConfig(min_gap_m=5e-3, max_gap_m=1e-3)

    def test_with_helpers_return_modified_copies(self):
        config = paper_harvester()
        changed = config.with_excitation(55.0, 0.3)
        assert changed.excitation.frequency_hz == 55.0
        assert changed.excitation.amplitude_ms2 == 0.3
        assert config.excitation.frequency_hz == 70.0  # original untouched
        assert config.with_initial_storage_voltage(1.0).initial_storage_voltage_v == 1.0
        assert config.with_initial_tuning(None).initial_tuned_frequency_hz is None


class TestDefaultSolverSettings:
    def test_step_bounded_by_excitation_period(self):
        settings = default_solver_settings(70.0, points_per_period=40)
        assert settings.step_control.h_max == pytest.approx(1.0 / 2800.0)

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            default_solver_settings(0.0)
        with pytest.raises(ConfigurationError):
            default_solver_settings(70.0, points_per_period=2)


class TestTunableEnergyHarvester:
    def test_assembled_model_size(self):
        harvester = TunableEnergyHarvester()
        # 3 generator + 6 multiplier (Vin + 5 stages) + 3 supercapacitor
        assert harvester.n_states == 12
        assert harvester.assembler.n_terminals == 4
        assert set(harvester.assembler.net_names()) == {
            "generator_output_V",
            "generator_output_I",
            "storage_port_V",
            "storage_port_I",
        }

    def test_initial_tuning_applied(self):
        harvester = TunableEnergyHarvester()
        assert harvester.generator.resonant_frequency_hz == pytest.approx(70.0, abs=0.01)
        assert harvester.actuator.position_m == pytest.approx(
            harvester.tuning_model.gap_for_frequency(70.0)
        )

    def test_initial_state_includes_precharge(self):
        config = paper_harvester().with_initial_storage_voltage(2.5)
        harvester = TunableEnergyHarvester(config)
        x0 = harvester.initial_state()
        storage = harvester.assembler.state_slice("storage")
        assert x0[storage] == pytest.approx([2.5, 2.5, 2.5])

    def test_without_controller_has_no_kernel(self):
        harvester = TunableEnergyHarvester(with_controller=False)
        assert harvester.controller is None
        solver = harvester.build_solver()
        assert solver.digital_kernel is None

    def test_solver_wiring(self):
        harvester = TunableEnergyHarvester()
        solver = harvester.build_solver()
        assert set(solver.interface.probe_names()) == {
            "ambient_frequency",
            "resonant_frequency",
            "storage_voltage",
        }
        assert set(solver.interface.control_names()) == {
            "load_resistance",
            "tuning_force",
        }
        assert solver.digital_kernel is not None

    def test_baseline_solver_shares_wiring(self):
        harvester = TunableEnergyHarvester()
        solver = harvester.build_baseline_solver()
        assert "storage_voltage" in solver.interface.probe_names()

    def test_pretuning_below_untuned_frequency_rejected(self):
        config = paper_harvester()
        config = dataclasses.replace(config, initial_tuned_frequency_hz=64.0)
        config = config.with_excitation(50.0)
        # excitation below range is fine; pre-tuning below untuned is not
        with pytest.raises(ConfigurationError):
            TunableEnergyHarvester(config.with_initial_tuning(63.0))


class TestScenarios:
    def test_scenario_1_definition(self):
        scenario = scenario_1()
        assert scenario.config.excitation.frequency_hz == pytest.approx(70.0)
        assert scenario.frequency_steps[0].frequency_hz == pytest.approx(71.0)
        assert scenario.with_controller
        assert "Table II" in scenario.paper_reference

    def test_scenario_2_covers_the_maximum_tuning_range(self):
        scenario = scenario_2()
        assert scenario.config.excitation.frequency_hz == pytest.approx(64.0)
        shift = scenario.frequency_steps[0].frequency_hz - 64.0
        assert shift == pytest.approx(14.0)

    def test_charging_scenario_is_open_loop(self):
        scenario = charging_scenario()
        assert not scenario.with_controller
        assert scenario.config.initial_storage_voltage_v == 0.0

    def test_paper_timescale_variants_are_slower(self):
        fast = scenario_1()
        slow = scenario_1(paper_timescale=True)
        assert slow.duration_s > fast.duration_s
        assert (
            slow.config.controller.watchdog_period_s
            > fast.config.controller.watchdog_period_s
        )

    def test_build_harvester_returns_fresh_instances(self):
        scenario = scenario_1()
        first = scenario.build_harvester()
        second = scenario.build_harvester()
        assert first is not second
        assert first.controller is not second.controller

    def test_scaled_copy(self):
        scenario = scenario_1().scaled(1.5)
        assert scenario.duration_s == pytest.approx(1.5)

    def test_source_reflects_frequency_schedule(self):
        scenario = scenario_1(shift_time_s=0.5)
        source = scenario.build_source()
        assert source.frequency(0.1) == pytest.approx(70.0)
        assert source.frequency(0.9) == pytest.approx(71.0)
