"""End-to-end tests of the spec-defined piezoelectric/electrostatic systems.

Also covers the spec-built paper system with the digital controller
attached (full Fig. 7 interface, declared declaratively) against the
hand-written :class:`TunableEnergyHarvester`, and the spec file I/O.
"""

import dataclasses

import numpy as np
import pytest

from repro.core import SystemBuilder
from repro.core.errors import ConfigurationError
from repro.harvester.config import paper_harvester
from repro.harvester.scenarios import (
    prepare_assembly,
    run_proposed,
    scenario_solver_settings,
)
from repro.harvester.system import TunableEnergyHarvester, paper_spec
from repro.harvester.topologies import (
    electrostatic_scenario,
    electrostatic_spec,
    generator_variants,
    piezoelectric_scenario,
    piezoelectric_spec,
)
from repro.io import load_spec, save_spec


class TestPiezoelectricTopology:
    def test_runs_and_charges(self):
        result = run_proposed(piezoelectric_scenario(duration_s=0.05))
        voltage = result["storage_voltage"].values
        assert np.all(np.isfinite(voltage))
        assert result["storage_voltage"].final() > 0.0
        assert np.all(np.isfinite(result["piezo_voltage"].values))
        assert result.metadata["scenario"] == "piezoelectric_charging"

    def test_assembly_structure_reuse_identical(self):
        scenario = piezoelectric_scenario(duration_s=0.03)
        structure = prepare_assembly(scenario)
        fresh = run_proposed(scenario)
        reused = run_proposed(scenario, assembly_structure=structure)
        assert np.array_equal(
            fresh["storage_voltage"].values, reused["storage_voltage"].values
        )

    def test_spec_is_valid_and_round_trips(self):
        spec = piezoelectric_spec()
        spec.validate()
        assert type(spec).from_dict(spec.to_dict()) == spec


class TestElectrostaticTopology:
    def test_runs_with_finite_difference_fallback(self):
        scenario = electrostatic_scenario(duration_s=0.03)
        built = scenario.build_harvester()
        generator = built.block("generator")
        # the block genuinely has no analytic linearisation
        x0 = generator.initial_state()
        assert generator.linearise(0.0, x0, np.zeros(2)) is None
        result = run_proposed(scenario)
        assert np.all(np.isfinite(result["storage_voltage"].values))
        assert result["storage_voltage"].final() > 0.0

    def test_travel_stays_inside_gap(self):
        result = run_proposed(electrostatic_scenario(duration_s=0.05))
        z = result["generator.z"].values
        nominal_gap = 100e-6
        assert np.max(np.abs(z)) < nominal_gap


class TestSpecScenario:
    def test_duck_type_and_copies(self):
        scenario = piezoelectric_scenario(duration_s=0.5)
        assert scenario.scaled(0.1).duration_s == pytest.approx(0.1)
        other = scenario.with_spec(electrostatic_spec())
        assert other.spec.name == "electrostatic_harvester"
        assert other.topology_key() != scenario.topology_key()

    def test_solver_settings_follow_spec_hints(self):
        scenario = piezoelectric_scenario()
        spec = scenario.spec
        settings = scenario_solver_settings(scenario)
        expected_h_max = 1.0 / (
            spec.solver.points_per_period * spec.excitation.frequency_hz
        )
        assert settings.step_control.h_max == pytest.approx(expected_h_max)

    def test_generator_variants_share_name_and_resonance(self):
        variants = generator_variants(70.0)
        assert set(variants) == {"electromagnetic", "piezoelectric", "electrostatic"}
        for block in variants.values():
            assert block.name == "generator"
        # the piezo variant's stiffness places its resonance at 70 Hz
        piezo = variants["piezoelectric"]
        import math

        f = math.sqrt(piezo.params["spring_stiffness"] / 0.008) / (2 * math.pi)
        assert f == pytest.approx(70.0)


class TestPaperSpecWithController:
    def test_matches_hand_written_harvester_with_controller(self):
        """Spec-declared Fig. 7 interface == hand-written wiring, byte for byte."""
        cfg = paper_harvester()
        cfg = dataclasses.replace(
            cfg,
            controller=dataclasses.replace(
                cfg.controller,
                watchdog_period_s=0.2,
                measurement_duration_s=0.05,
                tuning_poll_interval_s=0.02,
            ),
        )
        duration_s = 0.6

        legacy2 = TunableEnergyHarvester(config=cfg)
        built2 = SystemBuilder(paper_spec(cfg)).build()
        r_legacy = legacy2.build_solver().run(duration_s)
        r_spec = built2.build_solver().run(duration_s)

        for trace in ("storage_voltage", "generator_power", "load_resistance"):
            assert np.array_equal(
                r_legacy[trace].values, r_spec[trace].values
            ), f"{trace} differs between hand-written and spec-built paths"
        # the controller actually did something comparable in both runs
        assert built2.controller.n_wakeups == legacy2.controller.n_wakeups


class TestSpecFileIO:
    def test_json_save_load_round_trip(self, tmp_path):
        spec = piezoelectric_spec()
        path = save_spec(spec, str(tmp_path / "piezo.json"))
        assert load_spec(path) == spec

    def test_save_rejects_non_json(self, tmp_path):
        with pytest.raises(ConfigurationError, match="JSON"):
            save_spec(piezoelectric_spec(), str(tmp_path / "piezo.toml"))

    def test_toml_load(self, tmp_path):
        pytest.importorskip("tomllib")  # standard library from Python 3.11
        toml_text = """
name = "toml_system"
description = "spec loaded from TOML"

[excitation]
frequency_hz = 70.0
amplitude_ms2 = 0.5

[[blocks]]
key = "piezoelectric_generator"
name = "generator"
[blocks.params]
series_resistance_ohm = 4700.0

[[blocks]]
key = "dickson_multiplier"
name = "multiplier"
[blocks.params]
n_stages = 3

[[blocks]]
key = "supercapacitor"
name = "storage"

[[connections]]
a = "generator"
b = "multiplier"
voltage = ["Vm", "Vm"]
current = ["Im", "Im"]

[[connections]]
a = "multiplier"
b = "storage"
voltage = ["Vc", "Vc"]
current = ["Ic", "Ic"]
"""
        path = tmp_path / "system.toml"
        path.write_text(toml_text)
        spec = load_spec(str(path))
        spec.validate()
        assert spec.name == "toml_system"
        assert spec.block("multiplier").params["n_stages"] == 3
        # a TOML-loaded spec builds and runs
        built = SystemBuilder(spec).build()
        assert built.n_states > 0

    def test_load_unknown_extension(self, tmp_path):
        path = tmp_path / "spec.yaml"
        path.write_text("{}")
        with pytest.raises(ConfigurationError, match="format"):
            load_spec(str(path))
