"""The shim contract: each legacy entry point warns exactly once and
returns results byte-identical to the facade path (DESIGN.md §4)."""

import warnings

import numpy as np
import pytest

from repro import (
    ParameterSweep,
    RunOptions,
    Study,
    SweepEngine,
    charging_scenario,
)
from repro._deprecation import reset_deprecation_warnings
from repro.baselines import ImplicitSolverSettings, ReferenceSolverSettings
from repro.harvester.scenarios import run_baseline, run_proposed, run_reference

DURATION_S = 0.03
GRID = {"excitation_frequency_hz": [68.0, 70.0]}


def scenario():
    return charging_scenario(duration_s=DURATION_S)


@pytest.fixture(autouse=True)
def fresh_warning_registry():
    reset_deprecation_warnings()
    yield
    reset_deprecation_warnings()


def collect_deprecations(fn):
    """Run ``fn`` and return the DeprecationWarnings it emitted."""
    with warnings.catch_warnings(record=True) as caught:
        warnings.simplefilter("always")
        value = fn()
    return value, [
        w for w in caught if issubclass(w.category, DeprecationWarning)
    ]


def assert_traces_identical(legacy, facade_handle):
    for name in legacy.trace_names():
        assert np.array_equal(
            legacy[name].values, facade_handle[name].values
        ), f"trace {name!r} differs between shim and facade"
        assert np.array_equal(legacy[name].times, facade_handle[name].times)


class TestWarnOnce:
    def test_run_proposed_warns_exactly_once(self):
        _, first = collect_deprecations(lambda: run_proposed(scenario()))
        _, second = collect_deprecations(lambda: run_proposed(scenario()))
        assert len(first) == 1
        assert "Study.scenario" in str(first[0].message)
        assert len(second) == 0

    def test_parameter_sweep_run_warns_exactly_once(self):
        sweep = ParameterSweep(scenario(), GRID)
        _, first = collect_deprecations(sweep.run)
        _, second = collect_deprecations(sweep.run)
        assert len(first) == 1
        assert len(second) == 0

    def test_direct_sweep_engine_use_warns_exactly_once(self):
        _, first = collect_deprecations(lambda: SweepEngine(1))
        _, second = collect_deprecations(lambda: SweepEngine(1))
        assert len(first) == 1
        assert "SweepEngine" in str(first[0].message)
        assert len(second) == 0

    def test_each_entry_point_warns_independently(self):
        _, a = collect_deprecations(lambda: run_proposed(scenario()))
        _, b = collect_deprecations(lambda: ParameterSweep(scenario(), GRID).run())
        _, c = collect_deprecations(lambda: SweepEngine(1))
        assert [len(a), len(b), len(c)] == [1, 1, 1]

    def test_facade_paths_do_not_warn(self):
        def facade():
            Study.scenario(scenario()).run()
            Study.scenario(scenario()).sweep(GRID).run()

        _, caught = collect_deprecations(facade)
        assert caught == []


class TestByteIdentical:
    def test_run_proposed_matches_facade(self):
        legacy, _ = collect_deprecations(lambda: run_proposed(scenario()))
        facade = Study.scenario(scenario()).run()
        assert_traces_identical(legacy, facade)

    def test_run_baseline_matches_facade(self):
        settings = ImplicitSolverSettings(step_size=5e-4, record_interval=1e-3)
        legacy, caught = collect_deprecations(
            lambda: run_baseline(scenario(), settings=settings)
        )
        assert len(caught) == 1
        facade = (
            Study.scenario(scenario())
            .solver("baseline", settings=settings)
            .run()
        )
        assert_traces_identical(legacy, facade)

    def test_run_reference_matches_facade(self):
        settings = ReferenceSolverSettings(record_interval=2e-3)
        legacy, caught = collect_deprecations(
            lambda: run_reference(scenario(), settings=settings)
        )
        assert len(caught) == 1
        facade = (
            Study.scenario(scenario())
            .solver("reference", settings=settings)
            .run()
        )
        assert_traces_identical(legacy, facade)

    def test_parameter_sweep_run_matches_facade(self):
        sweep = ParameterSweep(scenario(), GRID)
        legacy, _ = collect_deprecations(sweep.run)
        facade = Study.scenario(scenario()).sweep(GRID).run()
        assert [p.score for p in legacy.points] == [
            p.score for p in facade.points
        ]
        assert [dict(p.parameters) for p in legacy.points] == [
            dict(p.parameters) for p in facade.points
        ]

    def test_direct_engine_matches_facade_batched(self):
        sweep = ParameterSweep(scenario(), GRID)
        engine, _ = collect_deprecations(
            lambda: SweepEngine(1, backend="batched").run(sweep)
        )
        facade = (
            Study.scenario(scenario())
            .options(RunOptions.batched())
            .sweep(GRID)
            .run()
        )
        assert [p.score for p in engine.points] == [
            p.score for p in facade.points
        ]


class TestEngineValidation:
    def test_engine_rejects_lane_width_with_process_backend(self):
        from repro.core.errors import ConfigurationError

        with pytest.raises(ConfigurationError) as excinfo:
            SweepEngine(1, lane_width=4)
        message = str(excinfo.value)
        assert "lane_width=4" in message and "process" in message
