"""Round-trip contract of the declarative experiment layer.

Pins the PR-5 tentpole: a Study and its serialised ExperimentSpec are the
same experiment — through plain dicts, JSON and TOML files, factory and
inline scenario forms — producing identical execution plans and equal
content hashes, with process-local objects and custom callables rejected
by name instead of silently dropped.
"""

import json

import pytest

from repro import (
    ExperimentSpec,
    RunOptions,
    Study,
    charging_scenario,
    scenario_1,
)
from repro.api.experiment import SweepAxis, SweepSpec, scenario_from_dict
from repro.core.errors import ConfigurationError
from repro.core.integrators import AdamsBashforth
from repro.core.solver import SolverSettings
from repro.core.spec import BlockSpec
from repro.harvester.scenarios import Scenario
from repro.harvester.topologies import (
    SpecScenario,
    generator_variants,
    piezoelectric_scenario,
)
from repro.io import load_experiment, save_experiment


def assert_plans_equal(study_a, study_b):
    """Two studies plan the same execution."""
    plan_a, plan_b = study_a.plan(), study_b.plan()
    assert plan_a.kind == plan_b.kind
    assert plan_a.describe() == plan_b.describe()
    assert plan_a.scenario == plan_b.scenario
    assert plan_a.solver == plan_b.solver
    assert dict(plan_a.solver_kwargs) == dict(plan_b.solver_kwargs)
    assert plan_a.compare_solvers == plan_b.compare_solvers
    assert plan_a.options.to_dict() == plan_b.options.to_dict()
    if plan_a.kind == "sweep":
        assert plan_a.sweep.parameters == plan_b.sweep.parameters
        assert plan_a.sweep.metric_name == plan_b.sweep.metric_name
        assert plan_a.sweep.metric is plan_b.sweep.metric


def through_dict(spec: ExperimentSpec) -> ExperimentSpec:
    """dict -> JSON text -> dict -> spec (the strictest in-memory path)."""
    return ExperimentSpec.from_dict(json.loads(json.dumps(spec.to_dict())))


# ---------------------------------------------------------------------- #
# scenario serialisation
# ---------------------------------------------------------------------- #
def test_scenario_dict_round_trip_is_lossless():
    scenario = scenario_1(duration_s=1.5)
    rebuilt = Scenario.from_dict(json.loads(json.dumps(scenario.to_dict())))
    assert rebuilt == scenario
    assert rebuilt.to_dict() == scenario.to_dict()


def test_spec_scenario_dict_round_trip_is_lossless():
    scenario = piezoelectric_scenario(duration_s=0.1)
    rebuilt = SpecScenario.from_dict(json.loads(json.dumps(scenario.to_dict())))
    assert rebuilt == scenario


def test_scenario_dict_rejects_unknown_fields():
    data = charging_scenario(0.1).to_dict()
    data["surprise"] = 1
    with pytest.raises(ConfigurationError, match="surprise"):
        Scenario.from_dict(data)


def test_scenario_factory_form_resolves():
    scenario = scenario_from_dict({"factory": "charging", "duration_s": 0.25})
    assert scenario == charging_scenario(duration_s=0.25)


def test_scenario_factory_unknown_name_and_kwargs_are_named():
    with pytest.raises(ConfigurationError, match="nope.*charging"):
        scenario_from_dict({"factory": "nope"})
    with pytest.raises(ConfigurationError, match="charging.*bogus"):
        scenario_from_dict({"factory": "charging", "bogus": 1})


# ---------------------------------------------------------------------- #
# options serialisation
# ---------------------------------------------------------------------- #
def test_run_options_round_trip_with_integrator_and_settings():
    options = RunOptions(
        integrator=AdamsBashforth(order=3),
        settings=SolverSettings(record_interval=2e-3, relinearise_interval=2),
        relinearise_interval=4,
        n_workers=2,
        cache="read",
        cache_dir="/tmp/somewhere",
    )
    rebuilt = RunOptions.from_dict(json.loads(json.dumps(options.to_dict())))
    assert rebuilt.to_dict() == options.to_dict()
    assert rebuilt.settings == options.settings
    assert rebuilt.integrator.order == 3
    assert rebuilt.fingerprint() == options.fingerprint()


def test_run_options_to_dict_omits_defaults():
    assert RunOptions().to_dict() == {}


def test_run_options_rejects_process_local_objects():
    with pytest.raises(ConfigurationError, match="progress"):
        RunOptions(progress=lambda *a: None, n_workers=2).to_dict()


def test_run_options_from_dict_rejects_unknown_fields():
    with pytest.raises(ConfigurationError, match="warp_factor"):
        RunOptions.from_dict({"warp_factor": 9})


# ---------------------------------------------------------------------- #
# experiment round trips: dict / JSON / TOML -> identical plans
# ---------------------------------------------------------------------- #
def test_single_run_spec_round_trips_to_identical_plan():
    study = Study.scenario(charging_scenario(duration_s=0.1))
    spec = study.to_spec(name="single")
    assert_plans_equal(study, Study.from_spec(through_dict(spec)))


def test_solver_and_compare_specs_round_trip():
    baseline = Study.scenario(charging_scenario(0.1)).solver(
        "baseline", max_iterations=40
    )
    assert_plans_equal(baseline, Study.from_spec(through_dict(baseline.to_spec())))

    compare = Study.scenario(charging_scenario(0.1)).compare("proposed", "baseline")
    assert_plans_equal(compare, Study.from_spec(through_dict(compare.to_spec())))


@pytest.mark.parametrize("extension", ["json", "toml"])
def test_sweep_spec_file_round_trip(tmp_path, extension):
    study = (
        Study.scenario(scenario_1(duration_s=0.5))
        .options(
            RunOptions(
                integrator=AdamsBashforth(order=2),
                relinearise_interval=2,
                n_workers=2,
            )
        )
        .sweep(
            {
                "initial_tuned_frequency_hz": [69.0, 70.0],
                "excitation_amplitude_ms2": [0.4, 0.59],
            }
        )
    )
    spec = study.to_spec(name="tuning")
    path = tmp_path / f"exp.{extension}"
    save_experiment(spec, str(path))
    loaded = load_experiment(str(path))
    assert loaded.content_hash() == spec.content_hash()
    assert_plans_equal(study, Study.from_spec(loaded))


@pytest.mark.parametrize("extension", ["json", "toml"])
def test_topology_axis_spec_file_round_trip(tmp_path, extension):
    variants = generator_variants(70.0)
    study = (
        Study.scenario(piezoelectric_scenario(duration_s=0.05))
        .options(RunOptions.batched(lane_width=4))
        .sweep(
            {
                "generator": [
                    variants["electromagnetic"],
                    variants["piezoelectric"],
                ]
            }
        )
    )
    spec = study.to_spec()
    path = tmp_path / f"topo.{extension}"
    save_experiment(spec, str(path))
    loaded = load_experiment(str(path))
    assert loaded.content_hash() == spec.content_hash()
    values = loaded.sweep.axes[0].values
    assert all(isinstance(value, BlockSpec) for value in values)
    assert_plans_equal(study, Study.from_spec(loaded))


def test_factory_and_inline_forms_hash_identically(tmp_path):
    path = tmp_path / "factory.toml"
    path.write_text(
        "[scenario]\nfactory = \"charging\"\nduration_s = 0.25\n"
    )
    factory_form = load_experiment(str(path))
    fluent_form = Study.scenario(charging_scenario(duration_s=0.25)).to_spec()
    assert factory_form.content_hash() == fluent_form.content_hash()


# ---------------------------------------------------------------------- #
# content-hash semantics
# ---------------------------------------------------------------------- #
def test_content_hash_ignores_scheduling_knobs():
    base = Study.scenario(charging_scenario(0.1))
    fast = base.options(n_workers=4)
    cached = base.options(cache="readwrite", cache_dir="/tmp/x")
    assert base.to_spec().content_hash() == fast.to_spec().content_hash()
    assert base.to_spec().content_hash() == cached.to_spec().content_hash()


def test_content_hash_tracks_result_affecting_knobs():
    base = Study.scenario(charging_scenario(0.1)).to_spec()
    longer = Study.scenario(charging_scenario(0.2)).to_spec()
    held = (
        Study.scenario(charging_scenario(0.1))
        .options(relinearise_interval=4)
        .to_spec()
    )
    assert base.content_hash() != longer.content_hash()
    assert base.content_hash() != held.content_hash()


# ---------------------------------------------------------------------- #
# loud rejections
# ---------------------------------------------------------------------- #
def test_experiment_dict_rejects_unknown_fields():
    spec = Study.scenario(charging_scenario(0.1)).to_spec()
    data = spec.to_dict()
    data["frobnicate"] = True
    with pytest.raises(ConfigurationError, match="frobnicate"):
        ExperimentSpec.from_dict(data)


def test_custom_metric_has_no_declarative_form():
    study = Study.scenario(charging_scenario(0.1)).sweep(
        {"excitation_frequency_hz": [66.0, 70.0]},
        metric=lambda result: 1.0,
    )
    with pytest.raises(ConfigurationError, match="named metric"):
        study.to_spec()


def test_unknown_sweep_metric_is_rejected():
    with pytest.raises(ConfigurationError, match="harvested_energy"):
        SweepSpec(
            axes=(SweepAxis("excitation_frequency_hz", (66.0,)),),
            metric="frobnication_index",
        )


def test_sweep_and_compare_are_incoherent():
    spec = (
        Study.scenario(charging_scenario(0.1))
        .sweep({"excitation_frequency_hz": [66.0, 70.0]})
        .to_spec()
    )
    with pytest.raises(ConfigurationError, match="compare"):
        ExperimentSpec(
            scenario=spec.scenario,
            sweep=spec.sweep,
            compare=("proposed", "baseline"),
        )


def test_save_experiment_rejects_unknown_extensions(tmp_path):
    spec = Study.scenario(charging_scenario(0.1)).to_spec()
    with pytest.raises(ConfigurationError, match="json"):
        save_experiment(spec, str(tmp_path / "exp.yaml"))
