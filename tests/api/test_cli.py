"""The `repro` command line: run/sweep/compare/export/cache subcommands.

Drives :func:`repro.cli.main` in-process (argv list + capsys) — the same
entry the ``[project.scripts] repro`` console script invokes.
"""

import csv
import json

import pytest

from repro.cli import main

QUICKSTART_TOML = """\
name = "cli_quickstart"

[scenario]
factory = "charging"
duration_s = 0.05
"""

SWEEP_TOML = """\
name = "cli_sweep"

[scenario]
factory = "charging"
duration_s = 0.05

[sweep]
metric = "harvested_energy"

[sweep.axes]
excitation_frequency_hz = [66.0, 70.0]
"""

COMPARE_TOML = """\
name = "cli_compare"
compare = ["proposed", "reference"]

[scenario]
factory = "charging"
duration_s = 0.02
"""


@pytest.fixture
def experiment_dir(tmp_path):
    (tmp_path / "quickstart.toml").write_text(QUICKSTART_TOML)
    (tmp_path / "sweep.toml").write_text(SWEEP_TOML)
    (tmp_path / "compare.toml").write_text(COMPARE_TOML)
    return tmp_path


def run_json(capsys, argv):
    code = main(argv)
    captured = capsys.readouterr()
    assert code == 0, captured.err
    return json.loads(captured.out)


def test_run_twice_reports_cache_hit_with_identical_finals(
    experiment_dir, capsys
):
    argv = [
        "run",
        str(experiment_dir / "quickstart.toml"),
        "--cache-dir",
        str(experiment_dir / "cache"),
        "--json",
    ]
    first = run_json(capsys, argv)
    second = run_json(capsys, argv)
    assert first["cache"] == "miss"
    assert second["cache"] == "hit"
    assert second["finals"] == first["finals"]
    assert second["content_hash"] == first["content_hash"]


def test_cli_run_is_byte_identical_to_the_fluent_study(experiment_dir, capsys):
    from repro import Study, charging_scenario

    report = run_json(
        capsys, ["run", str(experiment_dir / "quickstart.toml"), "--json"]
    )
    run = Study.scenario(charging_scenario(duration_s=0.05)).run()
    assert report["finals"] == {
        name: run.final(name) for name in run.trace_names()
    }


def test_run_text_report_mentions_cache(experiment_dir, capsys):
    assert (
        main(["run", str(experiment_dir / "quickstart.toml")]) == 0
    )
    out = capsys.readouterr().out
    assert "cache: off" in out
    assert "final trace values" in out


def test_sweep_command_ranks_and_caches(experiment_dir, capsys):
    argv = [
        "sweep",
        str(experiment_dir / "sweep.toml"),
        "--cache-dir",
        str(experiment_dir / "cache"),
        "--json",
    ]
    cold = run_json(capsys, argv)
    warm = run_json(capsys, argv)
    assert cold["kind"] == "sweep"
    assert warm["cache"].startswith("hit")
    assert warm["best_score"] == cold["best_score"]
    assert warm["points"] == cold["points"]


def test_sweep_command_rejects_single_run_experiments(experiment_dir, capsys):
    code = main(["sweep", str(experiment_dir / "quickstart.toml")])
    assert code == 2
    assert "sweep experiment" in capsys.readouterr().err


def test_compare_command(experiment_dir, capsys):
    report = run_json(
        capsys, ["compare", str(experiment_dir / "compare.toml"), "--json"]
    )
    assert report["kind"] == "compare"
    assert set(report["cpu_times"]) == {"proposed", "reference"}


def test_export_writes_csv(experiment_dir, capsys):
    out_csv = experiment_dir / "out.csv"
    code = main(
        [
            "export",
            str(experiment_dir / "quickstart.toml"),
            "--csv",
            str(out_csv),
        ]
    )
    assert code == 0
    with out_csv.open() as handle:
        header = next(csv.reader(handle))
    assert header[0] == "time"
    assert "storage_voltage" in header


def test_export_without_csv_errors(experiment_dir, capsys):
    assert main(["export", str(experiment_dir / "quickstart.toml")]) == 2
    assert "--csv" in capsys.readouterr().err


def test_cache_ls_gc_clear(experiment_dir, capsys):
    cache_dir = str(experiment_dir / "cache")
    main(
        [
            "run",
            str(experiment_dir / "quickstart.toml"),
            "--cache-dir",
            cache_dir,
        ]
    )
    capsys.readouterr()

    listing = run_json(capsys, ["cache", "ls", "--cache-dir", cache_dir, "--json"])
    assert listing["stats"]["n_entries"] == 1
    assert listing["entries"][0]["kind"] == "run"

    assert main(["cache", "gc", "--cache-dir", cache_dir]) == 0
    assert "removed 0 entries" in capsys.readouterr().out

    # clear refuses without --yes, then removes with it
    assert main(["cache", "clear", "--cache-dir", cache_dir]) == 2
    capsys.readouterr()
    assert main(["cache", "clear", "--cache-dir", cache_dir, "--yes"]) == 0
    assert "removed 1 entries" in capsys.readouterr().out
    listing = run_json(capsys, ["cache", "ls", "--cache-dir", cache_dir, "--json"])
    assert listing["stats"]["n_entries"] == 0


def test_missing_experiment_file_is_a_config_error(tmp_path, capsys):
    assert main(["run", str(tmp_path / "absent.toml")]) == 2
    assert "no such experiment file" in capsys.readouterr().err


def test_unknown_experiment_field_is_named(tmp_path, capsys):
    path = tmp_path / "bad.toml"
    path.write_text("frobnicate = true\n\n[scenario]\nfactory = \"charging\"\n")
    assert main(["run", str(path)]) == 2
    assert "frobnicate" in capsys.readouterr().err
