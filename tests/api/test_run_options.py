"""RunOptions: profiles, validation and incoherent-pair rejection."""

import pytest

from repro import RunOptions
from repro.core import AdamsBashforth, SolverSettings
from repro.core.errors import ConfigurationError


class TestProfiles:
    def test_default_is_exact_process_serial(self):
        options = RunOptions()
        assert options.relinearise_interval is None
        assert options.backend == "process"
        assert options.n_workers == 1
        assert options.lane_width is None

    def test_exact_profile_matches_default(self):
        assert RunOptions.exact() == RunOptions()

    def test_fast_profile_sets_relinearise_interval(self):
        assert RunOptions.fast().relinearise_interval == 4
        assert RunOptions.fast(relinearise_interval=8).relinearise_interval == 8

    def test_batched_profile_sets_backend_and_lane_width(self):
        options = RunOptions.batched(lane_width=16, n_workers=2)
        assert options.backend == "batched"
        assert options.lane_width == 16
        assert options.n_workers == 2

    def test_profiles_accept_common_overrides(self):
        integrator = AdamsBashforth(order=3)
        settings = SolverSettings()
        options = RunOptions.fast(integrator=integrator, settings=settings)
        assert options.integrator is integrator
        assert options.settings is settings

    def test_replace_revalidates(self):
        options = RunOptions.batched(lane_width=4)
        with pytest.raises(ConfigurationError, match="lane_width"):
            options.replace(backend="process")


class TestValidation:
    def test_unknown_backend_rejected(self):
        with pytest.raises(ConfigurationError, match="backend"):
            RunOptions(backend="gpu")

    def test_lane_width_with_process_backend_rejected_naming_pair(self):
        with pytest.raises(ConfigurationError) as excinfo:
            RunOptions(lane_width=4)
        message = str(excinfo.value)
        assert "lane_width=4" in message
        assert "backend='process'" in message

    def test_out_of_range_values_rejected(self):
        with pytest.raises(ConfigurationError, match="lane_width"):
            RunOptions(backend="batched", lane_width=0)
        with pytest.raises(ConfigurationError, match="n_workers"):
            RunOptions(n_workers=0)
        with pytest.raises(ConfigurationError, match="relinearise_interval"):
            RunOptions(relinearise_interval=0)
        with pytest.raises(ConfigurationError, match="progress"):
            RunOptions(progress="not-callable")

    def test_sweep_only_knobs_rejected_for_single_runs(self):
        for options, fragment in [
            (RunOptions(checkpoint_path="x.csv"), "checkpoint_path"),
            (RunOptions(progress=lambda *a: None), "progress"),
            (RunOptions(backend="batched"), "backend"),
            (RunOptions(n_workers=4), "n_workers"),
        ]:
            with pytest.raises(ConfigurationError, match=fragment):
                options.validate_for_single_run()

    def test_assembly_structure_rejected_for_sweeps(self):
        from repro import charging_scenario, prepare_assembly

        structure = prepare_assembly(charging_scenario(duration_s=0.01))
        options = RunOptions(assembly_structure=structure)
        with pytest.raises(ConfigurationError, match="assembly_structure"):
            options.validate_for_sweep()

    def test_single_run_accepts_run_knobs(self):
        RunOptions.fast().validate_for_single_run()
        RunOptions(n_workers=None).validate_for_single_run()


class TestQueueBackend:
    def test_queue_profile_arms_the_cache(self):
        options = RunOptions.queue("memory://fleet")
        assert options.backend == "queue"
        assert options.store_url == "memory://fleet"
        assert options.cache == "readwrite"
        options.validate_for_sweep()

    def test_queue_without_store_url_rejected(self):
        with pytest.raises(ConfigurationError, match="without store_url"):
            RunOptions(backend="queue", cache="readwrite")

    def test_store_url_and_cache_dir_are_mutually_exclusive(self):
        with pytest.raises(ConfigurationError, match="cache_dir"):
            RunOptions(store_url="memory://fleet", cache_dir="/tmp/cache")

    def test_queue_requires_a_writable_cache(self):
        with pytest.raises(ConfigurationError, match="store writes"):
            RunOptions(backend="queue", store_url="memory://fleet", cache="read")

    def test_store_url_with_cache_off_rejected(self):
        with pytest.raises(ConfigurationError, match="cache='off'"):
            RunOptions(store_url="memory://fleet", cache="off")

    def test_queue_rejects_local_worker_pools(self):
        with pytest.raises(ConfigurationError, match="external"):
            RunOptions.queue("memory://fleet", n_workers=4)

    def test_lease_timeout_only_with_queue_and_positive(self):
        RunOptions.queue("memory://fleet", lease_timeout_s=10.0).validate_for_sweep()
        with pytest.raises(ConfigurationError, match="lease_timeout_s"):
            RunOptions(lease_timeout_s=10.0)
        with pytest.raises(ConfigurationError, match="positive"):
            RunOptions.queue("memory://fleet", lease_timeout_s=0.0)

    def test_queue_and_process_share_one_execution_fingerprint(self):
        queued = RunOptions.queue("memory://fleet")
        direct = RunOptions(backend="process", cache="readwrite")
        assert queued.fingerprint() == direct.fingerprint()
