"""The README quick-start must run verbatim (doctest-style).

Extracts every fenced ``python`` block in the README's "## Quickstart"
section and executes it in one shared namespace.  CI additionally runs
this extraction on a clean install (the api-smoke job), so the first code
a new user copies can never silently rot.
"""

import re
from pathlib import Path

README = Path(__file__).resolve().parents[2] / "README.md"


def quickstart_blocks():
    text = README.read_text()
    match = re.search(r"^## Quickstart$(.*?)(?=^## )", text, re.M | re.S)
    assert match, "README.md has no '## Quickstart' section"
    blocks = re.findall(r"```python\n(.*?)```", match.group(1), re.S)
    assert blocks, "the Quickstart section has no ```python blocks"
    return blocks


def test_quickstart_runs_verbatim(capsys):
    namespace = {}
    for block in quickstart_blocks():
        exec(compile(block, str(README), "exec"), namespace)
    # the quick start prints the headline quantities; make sure it did
    assert capsys.readouterr().out.strip()
