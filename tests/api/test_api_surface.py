"""API-surface snapshot: pins ``repro.__all__`` and the facade exports.

A name leaving (or silently joining) the top-level namespace is an API
break; this test forces the change to be deliberate — update the
snapshot below *and* the README/DESIGN docs together.
"""

import repro
import repro.api

#: the pinned public surface of the top-level ``repro`` namespace
EXPECTED_ALL = [
    # public API facade (the canonical entry layer)
    "Study",
    "RunOptions",
    "RunHandle",
    "StudyResult",
    "ExplorationResult",
    "ComparisonResult",
    # declarative experiments + result cache
    "ExperimentSpec",
    "ResultStore",
    "load_experiment",
    "save_experiment",
    # core engine
    "BLOCK_REGISTRY",
    "AdamsBashforth",
    "AnalogueBlock",
    "BlockSpec",
    "ConnectionSpec",
    "ControllerSpec",
    "ForwardEuler",
    "LinearisedStateSpaceSolver",
    "Netlist",
    "RungeKutta2",
    "RungeKutta4",
    "SimulationResult",
    "SingularLaneError",
    "SolverSettings",
    "SystemAssembler",
    "SystemBuilder",
    "SystemSpec",
    "Trace",
    "make_integrator",
    # analysis / sweeps
    "EngineRunInfo",
    "ParameterSweep",
    "SweepEngine",
    "SweepPoint",
    "SweepResult",
    "sweep_excitation_frequency",
    # harvester system + scenarios
    "HarvesterConfig",
    "Scenario",
    "SpecScenario",
    "TunableEnergyHarvester",
    "charging_scenario",
    "default_solver_settings",
    "electrostatic_scenario",
    "electrostatic_spec",
    "generator_variants",
    "paper_harvester",
    "paper_spec",
    "piezoelectric_scenario",
    "piezoelectric_spec",
    "prepare_assembly",
    "run_baseline",
    "run_proposed",
    "run_reference",
    "scenario_1",
    "scenario_2",
    "__version__",
]


def test_top_level_all_is_pinned():
    assert repro.__all__ == EXPECTED_ALL


def test_every_exported_name_resolves():
    for name in repro.__all__:
        assert hasattr(repro, name), f"repro.__all__ lists missing name {name!r}"


def test_previously_unreachable_result_types_are_exported():
    # the satellite fix of PR 4: these used to require deep imports
    from repro import EngineRunInfo, SingularLaneError, SweepPoint, SweepResult

    assert SweepPoint is repro.analysis.sweep.SweepPoint
    assert SweepResult is repro.analysis.sweep.SweepResult
    assert EngineRunInfo is repro.analysis.engine.EngineRunInfo
    assert SingularLaneError is repro.core.errors.SingularLaneError


def test_api_package_surface():
    assert repro.api.__all__ == [
        "Study",
        "RunOptions",
        "RunHandle",
        "StudyResult",
        "ExplorationResult",
        "ComparisonResult",
        "ExecutionPlan",
        "ExperimentSpec",
        "SweepAxis",
        "SweepSpec",
        "BACKENDS",
        "SOLVERS",
        "CACHE_MODES",
        "execution_fingerprint",
    ]
    for name in repro.api.__all__:
        assert hasattr(repro.api, name)
    # the top-level re-exports are the same objects
    assert repro.Study is repro.api.Study
    assert repro.RunOptions is repro.api.RunOptions
