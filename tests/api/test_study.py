"""Study dispatch: single runs, comparisons, sweeps, plans, result wrappers."""

import numpy as np
import pytest

from repro import (
    ParameterSweep,
    RunOptions,
    Study,
    charging_scenario,
)
from repro.api import ComparisonResult, ExecutionPlan, RunHandle, StudyResult
from repro.api.planner import execute_sweep
from repro.baselines import ImplicitSolverSettings
from repro.core.errors import ConfigurationError
from repro.harvester.scenarios import _simulate_proposed

DURATION_S = 0.03
GRID = {"excitation_frequency_hz": [68.0, 70.0]}


def scenario():
    return charging_scenario(duration_s=DURATION_S)


class TestSingleRun:
    def test_run_returns_handle_matching_the_primitive(self):
        handle = Study.scenario(scenario()).run()
        assert isinstance(handle, RunHandle)
        direct = _simulate_proposed(scenario())
        assert np.array_equal(
            handle["storage_voltage"].values, direct["storage_voltage"].values
        )

    def test_handle_access_and_summary(self):
        handle = Study.scenario(scenario()).run()
        assert "storage_voltage" in handle
        assert handle.final("storage_voltage") == handle[
            "storage_voltage"
        ].final()
        assert "generator_power" in handle.trace_names()
        summary = handle.summary()
        assert summary["scenario"] == "charging"
        assert summary["cpu_time_s"] > 0
        assert "solver" in handle.format()

    def test_export_csv_roundtrip(self, tmp_path):
        from repro.io import import_traces

        handle = Study.scenario(scenario()).run()
        path = handle.export_csv(
            tmp_path / "run.csv", trace_names=["storage_voltage"], n_samples=50
        )
        assert "storage_voltage" in import_traces(path)

    def test_fast_profile_changes_run_but_still_completes(self):
        exact = Study.scenario(scenario()).run()
        fast = Study.scenario(scenario()).options(RunOptions.fast()).run()
        assert fast.stats.final_time == pytest.approx(exact.stats.final_time)

    def test_options_keyword_overrides(self):
        study = Study.scenario(scenario()).options(relinearise_interval=2)
        assert study._options.relinearise_interval == 2

    def test_scenario_required(self):
        with pytest.raises(ConfigurationError, match="scenario"):
            Study.scenario(object())

    def test_unknown_solver_rejected(self):
        with pytest.raises(ConfigurationError, match="solver"):
            Study.scenario(scenario()).solver("spice")

    def test_proposed_solver_kwargs_rejected_not_silently_dropped(self):
        from repro.core import RungeKutta4

        with pytest.raises(ConfigurationError, match="RunOptions"):
            Study.scenario(scenario()).solver("proposed", integrator=RungeKutta4())

    def test_sweep_only_options_rejected_at_plan_time(self):
        study = Study.scenario(scenario()).options(
            RunOptions(checkpoint_path="x.csv")
        )
        with pytest.raises(ConfigurationError, match="checkpoint_path"):
            study.plan()

    def test_proposed_knobs_rejected_for_baseline_solver(self):
        study = (
            Study.scenario(scenario())
            .options(RunOptions.fast())
            .solver("baseline")
        )
        with pytest.raises(ConfigurationError, match="relinearise_interval"):
            study.run()


class TestCompare:
    def test_compare_runs_both_solvers(self):
        comparison = (
            Study.scenario(scenario())
            .compare(
                "proposed",
                "baseline",
                settings=ImplicitSolverSettings(
                    step_size=2e-4, record_interval=1e-3
                ),
            )
            .run()
        )
        assert isinstance(comparison, ComparisonResult)
        assert comparison.solvers() == ["proposed", "baseline"]
        assert comparison["proposed"].stats.n_accepted_steps > 0
        assert comparison["baseline"].stats.n_newton_iterations > 0
        assert comparison.speedup() > 0
        assert "speedup" in comparison.summary()
        assert "CPU time" in comparison.format()

    def test_compare_defaults_and_duplicate_rejection(self):
        study = Study.scenario(scenario()).compare()
        assert study._compare_solvers == ("proposed", "baseline")
        with pytest.raises(ConfigurationError, match="distinct"):
            Study.scenario(scenario()).compare("proposed", "proposed")

    def test_compare_kwargs_with_several_non_proposed_solvers_rejected(self):
        with pytest.raises(ConfigurationError, match="non-proposed"):
            Study.scenario(scenario()).compare(
                "baseline",
                "reference",
                settings=ImplicitSolverSettings(step_size=2e-4),
            )

    def test_reference_solver_rejects_unknown_kwargs(self):
        study = Study.scenario(scenario()).solver("reference", rtol=1e-7)
        with pytest.raises(ConfigurationError, match="rtol"):
            study.run()

    def test_missing_solver_lookup_raises_keyerror(self):
        comparison = ComparisonResult(
            {"proposed": Study.scenario(scenario()).run()}
        )
        with pytest.raises(KeyError, match="available"):
            comparison["baseline"]


class TestSweep:
    def test_sweep_matches_engine_path_exactly(self):
        facade = Study.scenario(scenario()).sweep(GRID).run()
        assert isinstance(facade, StudyResult)
        raw = execute_sweep(
            ParameterSweep(scenario(), GRID), RunOptions()
        ).result
        assert [p.score for p in facade.points] == [p.score for p in raw.points]

    def test_sweep_axes_by_keyword(self):
        result = (
            Study.scenario(scenario())
            .sweep(excitation_frequency_hz=[68.0, 70.0])
            .run()
        )
        assert len(result.points) == 2

    def test_sweep_axis_given_twice_rejected(self):
        with pytest.raises(ConfigurationError, match="both"):
            Study.scenario(scenario()).sweep(
                GRID, excitation_frequency_hz=[70.0]
            )

    def test_batched_backend_through_options(self):
        result = (
            Study.scenario(scenario())
            .options(RunOptions.batched(lane_width=2))
            .sweep(GRID)
            .run()
        )
        assert result.engine_info.backend == "batched"
        assert result.engine_info.n_batched_candidates == 2

    def test_custom_metric_gets_named(self):
        from repro.analysis import average_power_metric

        result = (
            Study.scenario(scenario())
            .sweep(GRID, metric=average_power_metric)
            .run()
        )
        assert result.metric_name == "average_power_metric"

    def test_study_result_summary_and_export(self, tmp_path):
        result = Study.scenario(scenario()).sweep(GRID).run()
        summary = result.summary()
        assert summary["n_candidates"] == 2
        assert summary["backend"] == "process"
        path = result.export_csv(tmp_path / "ranking.csv")
        lines = path.read_text().strip().splitlines()
        assert lines[0].startswith("rank,")
        assert len(lines) == 3  # header + 2 candidates
        # best first: scores descending
        scores = [float(line.split(",")[1]) for line in lines[1:]]
        assert scores == sorted(scores, reverse=True)

    def test_sweep_with_compare_or_other_solver_rejected(self):
        with pytest.raises(ConfigurationError, match="compare"):
            Study.scenario(scenario()).sweep(GRID).compare().plan()
        with pytest.raises(ConfigurationError, match="solver"):
            Study.scenario(scenario()).sweep(GRID).solver("baseline").plan()


class TestPlan:
    def test_plan_kinds_and_describe(self):
        single = Study.scenario(scenario()).plan()
        assert isinstance(single, ExecutionPlan)
        assert single.kind == "single"
        assert "charging" in single.describe()

        sweep = Study.scenario(scenario()).sweep(GRID).plan()
        assert sweep.kind == "sweep"
        assert "excitation_frequency_hz[2]" in sweep.describe()

        compare = Study.scenario(scenario()).compare().plan()
        assert compare.kind == "compare"
        assert "baseline" in compare.describe()

    def test_fluent_steps_do_not_mutate(self):
        base = Study.scenario(scenario())
        base.options(RunOptions.fast())
        base.sweep(GRID)
        assert base.plan().kind == "single"
        assert base._options == RunOptions()
