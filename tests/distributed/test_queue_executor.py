"""Parent executor + worker loop: the distributed sweep end to end.

The unit tests drive :class:`QueueSweepExecutor` and
:func:`worker_loop` against in-memory stores and queues with injected
time; the integration test at the bottom runs a real facade sweep on
``backend="queue"`` with two worker threads and checks the scores are
*identical* to ``backend="process"`` — the subsystem's core promise.
"""

import threading
import uuid
from types import SimpleNamespace

import pytest

from repro import RunOptions, Study, charging_scenario
from repro.cache.store import open_store
from repro.core.errors import ConfigurationError, SimulationError
from repro.dist import executor as executor_module
from repro.dist.executor import QueueSweepExecutor, task_payload_for
from repro.dist.queue import open_queue
from repro.dist.worker import worker_loop

KEY_A = "aa" + "0" * 62
KEY_B = "bb" + "1" * 62


def fresh_url() -> str:
    return f"memory://executor-{uuid.uuid4().hex}"


def stub_task(index: int, cache_key: str):
    return SimpleNamespace(index=index, cache_key=cache_key, parameters={})


@pytest.fixture
def light_payloads(monkeypatch):
    """Bypass scenario serialisation: executor unit tests only need ids."""
    monkeypatch.setattr(
        executor_module,
        "task_payload_for",
        lambda task, salt: {"id": task.cache_key, "salt": salt},
    )


# ---------------------------------------------------------------------- #
# task_payload_for: the engine-side contract
# ---------------------------------------------------------------------- #
def test_payload_requires_cache_armed_tasks():
    task = SimpleNamespace(cache_key=None)
    with pytest.raises(ConfigurationError, match="engine invariant"):
        task_payload_for(task, salt="s")


def test_payload_id_is_the_cache_key_and_carries_the_salt():
    from repro.analysis.engine import _Task
    from repro.analysis.sweep import harvested_energy_metric

    task = _Task(
        index=3,
        parameters={"excitation_frequency_hz": 50.0},
        scenario=charging_scenario(0.01),
        metric=harvested_energy_metric,
        integrator=None,
        settings=None,
        relinearise_interval=None,
        cache_key=KEY_A,
    )
    payload = task_payload_for(task, salt="salt-1")
    assert payload["id"] == KEY_A
    assert payload["salt"] == "salt-1"
    assert payload["metric"] == "harvested_energy"
    assert payload["label"] == "excitation_frequency_hz=50.0"
    assert isinstance(payload["scenario"], dict)


# ---------------------------------------------------------------------- #
# QueueSweepExecutor unit behaviour (no workers, injected time)
# ---------------------------------------------------------------------- #
def test_executor_records_results_as_the_store_fills(light_payloads):
    url = fresh_url()
    store = open_store(store_url=url)
    queue = open_queue(url)
    # "workers" already delivered one result; the other lands mid-run
    store.store_point(KEY_A, score=1.0, cpu_time_s=0.1, exact_rerun=True)

    def sleep_and_deliver(seconds):
        store.store_point(KEY_B, score=2.0, cpu_time_s=0.2, exact_rerun=False)

    recorded = []
    executor = QueueSweepExecutor(store, queue, sleep=sleep_and_deliver)
    executor.run([stub_task(0, KEY_A), stub_task(1, KEY_B)], recorded.append)
    assert sorted((o["index"], o["score"]) for o in recorded) == [(0, 1.0), (1, 2.0)]
    # the candidates were enqueued for the fleet exactly once
    assert queue.put({"id": KEY_A}) is False


def test_executor_aborts_on_a_failed_task(light_payloads):
    url = fresh_url()
    store = open_store(store_url=url)
    queue = open_queue(url)

    def fail_then_sleep(seconds):
        queue.lease("w1", 30.0)
        queue.fail(KEY_A, "candidate diverged")

    executor = QueueSweepExecutor(store, queue, sleep=fail_then_sleep)
    with pytest.raises(SimulationError, match="candidate diverged"):
        executor.run([stub_task(0, KEY_A)], lambda outcome: None)


def test_executor_times_out_when_no_worker_ever_delivers(light_payloads):
    url = fresh_url()
    store = open_store(store_url=url)
    clock = iter(float(i) for i in range(1000))
    executor = QueueSweepExecutor(
        store,
        open_queue(url),
        timeout_s=5.0,
        sleep=lambda seconds: None,
        clock=lambda: next(clock),
    )
    with pytest.raises(SimulationError, match="timed out"):
        executor.run([stub_task(0, KEY_A)], lambda outcome: None)


def test_executor_timeout_env_var_applies(light_payloads, monkeypatch):
    monkeypatch.setenv(executor_module.QUEUE_TIMEOUT_ENV_VAR, "7.5")
    url = fresh_url()
    executor = QueueSweepExecutor(open_store(store_url=url), open_queue(url))
    assert executor.timeout_s == 7.5


def test_executor_warns_about_an_absent_fleet(light_payloads):
    url = fresh_url()
    store = open_store(store_url=url)
    clock = iter(float(i * 10) for i in range(1000))
    sleeps = {"n": 0}

    def deliver_late(seconds):
        sleeps["n"] += 1
        if sleeps["n"] >= 2:  # only after the stall warning had its chance
            store.store_point(KEY_A, score=1.0, cpu_time_s=0.1, exact_rerun=True)

    executor = QueueSweepExecutor(
        store,
        open_queue(url),
        stall_warn_s=15.0,
        sleep=deliver_late,
        clock=lambda: next(clock),
    )
    with pytest.warns(UserWarning, match="repro.*worker"):
        executor.run([stub_task(0, KEY_A)], lambda outcome: None)


# ---------------------------------------------------------------------- #
# worker_loop unit behaviour
# ---------------------------------------------------------------------- #
def test_worker_fails_salt_mismatched_tasks():
    url = fresh_url()
    queue = open_queue(url)
    queue.put({"id": KEY_A, "salt": "some-other-version"})
    counts = worker_loop(url, worker_id="w1", max_tasks=1, sleep=lambda s: None)
    assert counts == {"done": 0, "failed": 1}
    assert "mixed-version fleets" in queue.stats()["errors"][KEY_A]


def test_worker_acknowledges_results_already_in_the_store():
    url = fresh_url()
    store = open_store(store_url=url)
    store.store_point(KEY_A, score=1.0, cpu_time_s=0.1, exact_rerun=True)
    queue = open_queue(url)
    queue.put({"id": KEY_A, "salt": store.salt})
    counts = worker_loop(url, worker_id="w1", max_tasks=1, sleep=lambda s: None)
    assert counts == {"done": 1, "failed": 0}
    assert queue.stats()["done"] == 1


def test_worker_records_evaluation_failures_instead_of_dying():
    url = fresh_url()
    store = open_store(store_url=url)
    queue = open_queue(url)
    queue.put({"id": KEY_A, "salt": store.salt, "scenario": {"bogus": True}})
    counts = worker_loop(url, worker_id="w1", max_tasks=1, sleep=lambda s: None)
    assert counts == {"done": 0, "failed": 1}
    assert queue.stats()["errors"][KEY_A]  # the exception text was recorded
    assert store.load_point(KEY_A) is None  # nothing was written to the store


def test_worker_exit_when_idle_with_an_empty_queue():
    url = fresh_url()
    counts = worker_loop(
        url, worker_id="w1", exit_when_idle=True, sleep=lambda s: None
    )
    assert counts == {"done": 0, "failed": 0}


def test_worker_idle_timeout():
    url = fresh_url()
    ticks = iter(float(i) for i in range(1000))
    counts = worker_loop(
        url,
        worker_id="w1",
        idle_timeout_s=3.0,
        sleep=lambda s: None,
        clock=lambda: next(ticks),
    )
    assert counts == {"done": 0, "failed": 0}


# ---------------------------------------------------------------------- #
# the core promise: queue scores == process scores
# ---------------------------------------------------------------------- #
def test_queue_backend_matches_process_backend_exactly():
    axes = {"excitation_frequency_hz": [40.0, 50.0, 60.0, 80.0]}

    def run_with(options):
        return (
            Study.scenario(charging_scenario(0.1))
            .options(options)
            .sweep(axes)
            .run()
        )

    url = fresh_url()
    stop = threading.Event()
    workers = [
        threading.Thread(
            target=worker_loop,
            args=(url,),
            kwargs=dict(
                worker_id=f"w{i}", lease_s=5.0, poll_s=0.05, stop=stop.is_set
            ),
            daemon=True,
        )
        for i in range(2)
    ]
    for worker in workers:
        worker.start()
    try:
        queued = run_with(RunOptions.queue(url))
    finally:
        stop.set()
        for worker in workers:
            worker.join(timeout=10.0)

    direct = run_with(RunOptions(backend="process", n_workers=1))

    def table(result):
        return sorted(
            (point.parameters["excitation_frequency_hz"], point.score)
            for point in result.points
        )

    assert table(queued) == table(direct)  # identical, not approximately
    assert queued.best().parameters == direct.best().parameters

    # queue and process share one execution fingerprint, so a process
    # sweep pointed at the same store is a pure cache hit
    store = open_store(store_url=url)
    assert store.stats()["n_points"] == 4
