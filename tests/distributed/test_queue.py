"""Lease state machine of the work queues (memory and directory).

Both implementations must agree on the semantics the executor and the
workers rely on: idempotent puts, exactly-one lease per task, expiry
reclamation with an attempt budget, and idempotent done/fail.  Time is
injected so expiry never sleeps.
"""

import json

import pytest

from repro.core.errors import ConfigurationError
from repro.dist.queue import (
    QUEUE_DIR_NAME,
    DirWorkQueue,
    MemoryWorkQueue,
    open_queue,
)

TASK_ID = "ab" + "0" * 62


class FakeClock:
    def __init__(self, now: float = 1000.0) -> None:
        self.now = now

    def __call__(self) -> float:
        return self.now

    def advance(self, seconds: float) -> None:
        self.now += seconds


@pytest.fixture(params=["memory", "dir"])
def make_queue(request, tmp_path):
    def build(*, max_attempts: int = 5, clock=None):
        clock = clock if clock is not None else FakeClock()
        if request.param == "memory":
            return MemoryWorkQueue(max_attempts=max_attempts, clock=clock)
        return DirWorkQueue(
            tmp_path / QUEUE_DIR_NAME, max_attempts=max_attempts, clock=clock
        )

    return build


def test_put_is_idempotent_and_lease_hands_out_once(make_queue):
    queue = make_queue()
    assert queue.put({"id": TASK_ID, "n": 1}) is True
    assert queue.put({"id": TASK_ID, "n": 2}) is False  # already pending
    lease = queue.lease("w1", 30.0)
    assert lease["id"] == TASK_ID
    assert lease["attempts"] == 0
    assert lease["payload"]["n"] == 1  # the first put won
    assert queue.put({"id": TASK_ID}) is False  # leased: still no re-enqueue
    assert queue.lease("w2", 30.0) is None  # one lease per task
    stats = queue.stats()
    assert stats["leased"] == 1 and stats["pending"] == 0


def test_heartbeat_extends_and_expiry_reclaims_with_attempt_bump(make_queue):
    clock = FakeClock()
    queue = make_queue(clock=clock)
    queue.put({"id": TASK_ID})
    assert queue.lease("w1", lease_s=10.0) is not None
    clock.advance(8.0)
    assert queue.heartbeat(TASK_ID, 10.0) is True  # deadline now t+18
    clock.advance(8.0)  # t+16: heartbeat kept it alive
    assert queue.lease("w2", 10.0) is None
    clock.advance(5.0)  # t+21: the lease expired (no more heartbeats)
    release = queue.lease("w2", 10.0)
    assert release["id"] == TASK_ID
    assert release["attempts"] == 1  # reclamation is a counted re-run
    assert queue.heartbeat(TASK_ID, 10.0) is True  # w2 owns it now


def test_heartbeat_on_unleased_task_reports_a_lost_lease(make_queue):
    queue = make_queue()
    assert queue.heartbeat(TASK_ID, 30.0) is False  # never enqueued
    queue.put({"id": TASK_ID})
    assert queue.heartbeat(TASK_ID, 30.0) is False  # pending, not leased


def test_expired_lease_budget_marks_the_task_failed(make_queue):
    clock = FakeClock()
    queue = make_queue(max_attempts=2, clock=clock)
    queue.put({"id": TASK_ID})
    for expected_attempts in (0, 1):  # two leases, both left to expire
        lease = queue.lease("doomed", lease_s=5.0)
        assert lease["attempts"] == expected_attempts
        clock.advance(6.0)
    assert queue.lease("doomed", 5.0) is None  # budget spent: failed, not reissued
    stats = queue.stats()
    assert stats["failed"] == 1
    assert "gave up after 2 expired leases" in stats["errors"][TASK_ID]


def test_done_is_idempotent_and_blocks_re_enqueue(make_queue):
    queue = make_queue()
    queue.put({"id": TASK_ID})
    queue.lease("w1", 30.0)
    queue.done(TASK_ID)
    queue.done(TASK_ID)  # duplicate finisher: harmless
    assert queue.put({"id": TASK_ID}) is False  # done is terminal
    assert queue.lease("w1", 30.0) is None
    assert queue.stats()["done"] == 1


def test_done_after_reclamation_still_records_completion(make_queue):
    """A presumed-dead worker finishing late must not lose the result."""
    clock = FakeClock()
    queue = make_queue(clock=clock)
    queue.put({"id": TASK_ID})
    queue.lease("slow", lease_s=5.0)
    clock.advance(6.0)
    queue.lease("fast", lease_s=5.0)  # reclamation hands it to a second worker
    queue.done(TASK_ID)  # the slow worker finishes anyway
    queue.done(TASK_ID)  # ... and so does the fast one
    stats = queue.stats()
    assert stats["done"] == 1
    assert stats["leased"] == stats["pending"] == stats["failed"] == 0


def test_fail_records_the_error_and_put_resets_for_a_fresh_run(make_queue):
    queue = make_queue()
    queue.put({"id": TASK_ID})
    queue.lease("w1", 30.0)
    queue.fail(TASK_ID, "divergent candidate")
    stats = queue.stats()
    assert stats["failed"] == 1
    assert stats["errors"][TASK_ID] == "divergent candidate"
    assert queue.put({"id": TASK_ID}) is True  # failed tasks may be retried
    lease = queue.lease("w2", 30.0)
    assert lease["attempts"] == 0  # the reset cleared the budget


def test_fail_never_downgrades_a_done_task(make_queue):
    queue = make_queue()
    queue.put({"id": TASK_ID})
    queue.lease("w1", 30.0)
    queue.done(TASK_ID)
    queue.fail(TASK_ID, "late spurious failure")
    assert queue.stats()["done"] == 1
    assert queue.stats()["failed"] == 0


def test_task_ids_must_be_filename_safe(make_queue):
    queue = make_queue()
    with pytest.raises(ConfigurationError, match="task id"):
        queue.put({"id": "../../etc/passwd"})
    with pytest.raises(ConfigurationError, match="task id"):
        queue.put({})


def test_sigkilled_workers_stale_lease_file_is_reclaimed(tmp_path):
    """A leased/ file whose deadline passed — all a SIGKILL leaves behind —
    goes back to pending with its attempt counted."""
    root = tmp_path / QUEUE_DIR_NAME
    clock = FakeClock()
    queue = DirWorkQueue(root, clock=clock)
    (root / "leased").mkdir(parents=True)
    (root / "leased" / f"{TASK_ID}.json").write_text(
        json.dumps(
            {
                "payload": {"id": TASK_ID, "n": 7},
                "attempts": 0,
                "worker": "killed-worker",
                "deadline": clock() - 1.0,
            }
        )
    )
    lease = queue.lease("survivor", 30.0)
    assert lease["id"] == TASK_ID
    assert lease["attempts"] == 1
    assert lease["payload"]["n"] == 7


def test_open_queue_maps_store_urls(tmp_path):
    assert isinstance(open_queue(str(tmp_path)), DirWorkQueue)
    dir_queue = open_queue(f"file://{tmp_path}")
    assert isinstance(dir_queue, DirWorkQueue)
    assert dir_queue.root == tmp_path / QUEUE_DIR_NAME
    memory_url = "memory://open-queue-unit"
    assert open_queue(memory_url) is open_queue(memory_url)  # shared registry
    with pytest.raises(ConfigurationError, match="unknown store URL scheme"):
        open_queue("s3://bucket")
