"""Store-backend contract: URL resolution, atomicity and layout rules."""

import uuid

import pytest

from repro.core.errors import ConfigurationError
from repro.dist.backends import (
    ENTRY_BLOB,
    LocalDirBackend,
    MemoryBackend,
    SocketKVBackend,
    resolve_backend,
)


# ---------------------------------------------------------------------- #
# resolve_backend: URL -> backend
# ---------------------------------------------------------------------- #
def test_file_url_and_bare_path_resolve_to_local_dir(tmp_path):
    by_url = resolve_backend(f"file://{tmp_path}")
    assert isinstance(by_url, LocalDirBackend)
    assert by_url.root == tmp_path
    by_path = resolve_backend(str(tmp_path))
    assert isinstance(by_path, LocalDirBackend)
    assert by_path.root == tmp_path


def test_memory_url_is_a_process_shared_registry():
    name = f"reg-{uuid.uuid4().hex}"
    first = resolve_backend(f"memory://{name}")
    assert isinstance(first, MemoryBackend)
    # same name -> the very same object (parent and worker threads share it)
    assert resolve_backend(f"memory://{name}") is first
    assert resolve_backend(f"memory://{name}-other") is not first
    assert first.describe() == f"memory://{name}"


def test_kv_url_parses_host_and_port():
    backend = resolve_backend("kv://127.0.0.1:7077")
    assert isinstance(backend, SocketKVBackend)
    assert (backend.host, backend.port) == ("127.0.0.1", 7077)
    assert backend.describe() == "kv://127.0.0.1:7077"


@pytest.mark.parametrize("url", ["kv://nohost", "kv://host:", "kv://host:notaport"])
def test_malformed_kv_url_is_rejected(url):
    with pytest.raises(ConfigurationError, match="kv://host:port"):
        resolve_backend(url)


def test_unknown_scheme_and_empty_url_are_rejected():
    with pytest.raises(ConfigurationError, match="unknown store URL scheme"):
        resolve_backend("s3://bucket/prefix")
    with pytest.raises(ConfigurationError, match="non-empty"):
        resolve_backend("")
    with pytest.raises(ConfigurationError, match="empty path"):
        resolve_backend("file://")


# ---------------------------------------------------------------------- #
# LocalDirBackend: the historical layout's write discipline
# ---------------------------------------------------------------------- #
def test_local_put_renames_entry_json_into_place_last(tmp_path, monkeypatch):
    import repro.dist.backends as backends_module

    landed = []
    real_replace = backends_module.os.replace

    def recording_replace(src, dst):
        landed.append(str(dst).rsplit("/", 1)[-1])
        return real_replace(src, dst)

    monkeypatch.setattr(backends_module.os, "replace", recording_replace)
    backend = LocalDirBackend(tmp_path)
    backend.put("ab" + "0" * 62, {ENTRY_BLOB: b"{}", "traces.npz": b"npz"})
    # no entry.json means no entry, so it must always land last
    assert landed == ["traces.npz", ENTRY_BLOB]


def test_local_torn_entry_is_invisible_but_enumerable(tmp_path):
    backend = LocalDirBackend(tmp_path)
    key = "cd" + "1" * 62
    backend.put(key, {"traces.npz": b"npz"})  # crashed before entry.json
    assert backend.contains(key) is False
    assert backend.get(key) is None
    assert backend.get(key, "traces.npz") == b"npz"
    # gc still sees the torn directory so it can be reclaimed
    assert list(backend.iter_keys()) == [key]
    assert backend.size(key) == 3
    assert backend.delete(key) is True
    assert backend.delete(key) is False


def test_local_iter_keys_skips_dot_directories(tmp_path):
    backend = LocalDirBackend(tmp_path)
    key = "ef" + "2" * 62
    backend.put(key, {ENTRY_BLOB: b"{}"})
    # the work queue lives in <root>/.queue; it must never look like an entry
    (tmp_path / ".queue" / "pending").mkdir(parents=True)
    (tmp_path / ".queue" / "pending" / "bogus.json").write_text("{}")
    assert list(backend.iter_keys()) == [key]


# ---------------------------------------------------------------------- #
# MemoryBackend: atomic publication under a lock
# ---------------------------------------------------------------------- #
def test_memory_backend_round_trip_and_merge():
    backend = MemoryBackend(name="unit")
    key = "k" * 64
    backend.put(key, {"traces.npz": b"npz"})
    assert backend.contains(key) is False  # entry blob still missing
    backend.put(key, {ENTRY_BLOB: b"{}"})  # second put merges blobs
    assert backend.contains(key) is True
    assert backend.get(key) == b"{}"
    assert backend.get(key, "traces.npz") == b"npz"
    assert backend.size(key) == 5
    assert list(backend.iter_keys()) == [key]
    assert backend.delete(key) is True
    assert backend.delete(key) is False
    assert backend.get(key) is None
