"""Wire protocol and server semantics of ``repro kv-serve``."""

import socket
import struct
import threading

import pytest

from repro.core.errors import ConfigurationError
from repro.dist import kv as kv_module
from repro.dist.kv import (
    PROTOCOL,
    KVClient,
    KVServer,
    recv_frame,
    send_frame,
)


@pytest.fixture
def server():
    server = KVServer(("127.0.0.1", 0))
    thread = threading.Thread(
        target=server.serve_forever, kwargs={"poll_interval": 0.05}, daemon=True
    )
    thread.start()
    yield server
    server.shutdown()
    server.server_close()
    thread.join(timeout=5.0)


@pytest.fixture
def client(server):
    host, port = server.server_address[:2]
    client = KVClient(host, port, timeout_s=5.0)
    yield client
    client.close()


# ---------------------------------------------------------------------- #
# framing
# ---------------------------------------------------------------------- #
def test_frame_round_trip_and_clean_eof():
    left, right = socket.socketpair()
    try:
        send_frame(left, {"op": "ping", "blob": "x" * 1000})
        assert recv_frame(right) == {"op": "ping", "blob": "x" * 1000}
        left.close()
        assert recv_frame(right) is None  # EOF between frames is clean
    finally:
        right.close()


def test_oversized_announced_frame_is_refused():
    left, right = socket.socketpair()
    try:
        left.sendall(struct.pack(">I", kv_module.MAX_FRAME_BYTES + 1))
        with pytest.raises(ConnectionError, match="limit"):
            recv_frame(right)
    finally:
        left.close()
        right.close()


def test_stream_ending_mid_frame_is_an_error():
    left, right = socket.socketpair()
    try:
        left.sendall(struct.pack(">I", 100) + b'{"op"')  # then the peer dies
        left.close()
        with pytest.raises(ConnectionError, match="mid-frame"):
            recv_frame(right)
    finally:
        right.close()


def test_send_frame_refuses_oversized_payload(monkeypatch):
    monkeypatch.setattr(kv_module, "MAX_FRAME_BYTES", 16)
    left, right = socket.socketpair()
    try:
        with pytest.raises(ConfigurationError, match="exceeds"):
            send_frame(left, {"op": "x" * 64})
    finally:
        left.close()
        right.close()


# ---------------------------------------------------------------------- #
# server ops through the real socket client
# ---------------------------------------------------------------------- #
def test_store_ops_round_trip(client):
    key = "ab" + "0" * 62
    assert client.contains(key) is False
    client.put(key, {"traces.npz": b"\x00npz", "entry.json": b"{}"})
    assert client.contains(key) is True
    assert client.get(key) == b"{}"
    assert client.get(key, "traces.npz") == b"\x00npz"  # binary-safe via base64
    assert client.get(key, "missing") is None
    assert client.keys() == [key]
    assert client.size(key) == 6
    assert client.delete(key) is True
    assert client.delete(key) is False


def test_queue_ops_round_trip(client):
    task_id = "cd" + "1" * 62
    assert client.q_put({"id": task_id, "payload": "p"}) is True
    assert client.q_put({"id": task_id}) is False  # idempotent
    lease = client.q_lease("w1", 30.0)
    assert lease["id"] == task_id
    assert lease["attempts"] == 0
    assert lease["payload"]["payload"] == "p"
    assert client.q_lease("w2", 30.0) is None  # nothing else pending
    assert client.q_heartbeat(task_id, 30.0) is True
    client.q_done(task_id)
    assert client.q_heartbeat(task_id, 30.0) is False  # lease is gone
    stats = client.q_stats()
    assert stats["done"] == 1
    assert stats["pending"] == stats["leased"] == stats["failed"] == 0


def test_failed_task_error_travels_through_stats(client):
    task_id = "ef" + "2" * 62
    client.q_put({"id": task_id})
    client.q_lease("w1", 30.0)
    client.q_fail(task_id, "boom on worker")
    stats = client.q_stats()
    assert stats["failed"] == 1
    assert stats["errors"] == {task_id: "boom on worker"}


def test_server_rejects_bad_requests_without_dying(client):
    with pytest.raises(ConfigurationError, match="unknown op"):
        client._roundtrip({"op": "nonsense"})
    with pytest.raises(ConfigurationError, match="rejected"):
        client._roundtrip({"op": "put", "key": "k", "files": "not-a-dict"})
    # the connection (and server) survived both rejections
    assert client.contains("ab" + "3" * 62) is False


def test_client_handshake_rejects_a_non_kv_peer():
    """Dialing something that is not `repro kv-serve` fails loudly."""
    listener = socket.socket()
    listener.bind(("127.0.0.1", 0))
    listener.listen(1)
    host, port = listener.getsockname()

    def impostor():
        conn, _ = listener.accept()
        recv_frame(conn)  # swallow the ping
        send_frame(conn, {"server": "bogus/9"})
        conn.close()

    thread = threading.Thread(target=impostor, daemon=True)
    thread.start()
    try:
        with pytest.raises(ConnectionError, match=PROTOCOL):
            KVClient(host, port, timeout_s=5.0)._connect()
    finally:
        thread.join(timeout=5.0)
        listener.close()
