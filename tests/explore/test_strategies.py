"""Strategy-layer unit tests: enumeration, sampling, halving schedules.

No simulations here — these pin the pure search behaviour every
strategy must honour: the canonical grid enumeration order, seeded
determinism of the samplers, the halving schedule arithmetic and the
round protocol (strict ordering, observation counts, survivors).
"""

import itertools

import pytest

from repro.core.errors import ConfigurationError
from repro.explore import (
    EXPLORE_STRATEGIES,
    GridExtensionStrategy,
    GridStrategy,
    LatinHypercubeStrategy,
    Observation,
    Proposal,
    RandomStrategy,
    SuccessiveHalvingStrategy,
    grid_candidates,
    grid_size,
    make_strategy,
)

AXES = {"a": [1.0, 2.0, 3.0], "b": [10.0, 20.0]}


def observe_all(strategy, proposals, scores):
    strategy.observe(
        [
            Observation(parameters=p.parameters, horizon=p.horizon, score=s)
            for p, s in zip(proposals, scores)
        ]
    )


# ---------------------------------------------------------------------- #
# the canonical enumeration
# ---------------------------------------------------------------------- #
def test_grid_candidates_match_the_legacy_itertools_product():
    names = list(AXES)
    legacy = [
        dict(zip(names, combo))
        for combo in itertools.product(*(AXES[n] for n in names))
    ]
    assert list(grid_candidates(AXES)) == legacy
    assert grid_size(AXES) == len(legacy) == 6


def test_parameter_sweep_candidates_delegate_to_grid_candidates():
    from repro import charging_scenario
    from repro.analysis.sweep import ParameterSweep

    sweep = ParameterSweep(
        charging_scenario(duration_s=0.05),
        {"excitation_frequency_hz": [66.0, 70.0], "excitation_amplitude_ms2": [0.3]},
    )
    assert list(sweep.candidates()) == list(grid_candidates(sweep.parameters))


# ---------------------------------------------------------------------- #
# grid / extend
# ---------------------------------------------------------------------- #
def test_grid_strategy_proposes_the_dense_grid_once_at_full_horizon():
    strategy = GridStrategy(AXES)
    assert not strategy.done()
    proposals = strategy.propose(0)
    assert [dict(p.parameters) for p in proposals] == list(grid_candidates(AXES))
    assert all(p.horizon == 1.0 for p in proposals)
    observe_all(strategy, proposals, range(len(proposals)))
    assert strategy.done()
    assert strategy.propose(1) == []


def test_grid_strategy_fingerprint_is_legacy_checkpoint_compatible():
    # None means "write exactly the dense-sweep checkpoint metadata"
    assert GridStrategy(AXES).fingerprint() is None
    assert GridExtensionStrategy(AXES).fingerprint() is None
    assert GridExtensionStrategy(AXES).name == "extend"


# ---------------------------------------------------------------------- #
# seeded samplers
# ---------------------------------------------------------------------- #
def test_random_strategy_is_deterministic_per_seed():
    first = RandomStrategy(AXES, budget=4, seed=42).propose(0)
    second = RandomStrategy(AXES, budget=4, seed=42).propose(0)
    assert [dict(p.parameters) for p in first] == [
        dict(p.parameters) for p in second
    ]
    assert len(first) == 4


def test_random_strategy_emits_candidates_in_enumeration_order():
    grid = list(grid_candidates(AXES))
    proposals = RandomStrategy(AXES, budget=4, seed=7).propose(0)
    indices = [grid.index(dict(p.parameters)) for p in proposals]
    assert indices == sorted(indices)
    assert len(set(indices)) == len(indices)


def test_random_strategy_caps_the_budget_at_the_grid_size():
    proposals = RandomStrategy(AXES, budget=50, seed=0).propose(0)
    assert [dict(p.parameters) for p in proposals] == list(grid_candidates(AXES))


def test_latin_strategy_covers_every_axis_level_once():
    axes = {"x": [1.0, 2.0, 3.0, 4.0], "y": [5.0, 6.0, 7.0, 8.0]}
    proposals = LatinHypercubeStrategy(axes, budget=4, seed=3).propose(0)
    assert len(proposals) == 4
    for name in axes:
        covered = sorted(p.parameters[name] for p in proposals)
        assert covered == axes[name]


def test_samplers_require_budget_and_seed():
    with pytest.raises(ConfigurationError, match="needs a budget"):
        RandomStrategy(AXES, seed=1)
    with pytest.raises(ConfigurationError, match="needs a seed"):
        RandomStrategy(AXES, budget=3)
    with pytest.raises(ConfigurationError, match="budget must be at least 1"):
        LatinHypercubeStrategy(AXES, budget=0, seed=1)


def test_sampler_is_a_single_round():
    strategy = RandomStrategy(AXES, budget=3, seed=1)
    proposals = strategy.propose(0)
    assert not strategy.done()
    observe_all(strategy, proposals, range(len(proposals)))
    assert strategy.done()
    assert strategy.propose(1) == []
    assert strategy.fingerprint() == {"strategy": "random", "budget": 3, "seed": 1}


# ---------------------------------------------------------------------- #
# successive halving
# ---------------------------------------------------------------------- #
def test_halving_schedule_16_candidates_eta_3():
    strategy = SuccessiveHalvingStrategy({"x": [float(i) for i in range(16)]})
    assert strategy.counts == [16, 6, 2]
    assert strategy.horizons == [1.0 / 9.0, 1.0 / 3.0, 1.0]
    plans = strategy.schedule()
    assert [plan.n_candidates for plan in plans] == [16, 6, 2]
    assert [plan.horizon for plan in plans] == strategy.horizons
    # the geometric schedule spends well under half the dense-grid work
    work = sum(c * h for c, h in zip(strategy.counts, strategy.horizons))
    assert work / 16.0 < 0.5


def test_halving_eliminates_on_scores_and_reranks_the_final_round():
    strategy = SuccessiveHalvingStrategy({"x": [0.0, 1.0, 2.0, 3.0]}, eta=2)
    assert strategy.counts == [4, 2, 1]
    assert strategy.horizons == [0.25, 0.5, 1.0]

    round0 = strategy.propose(0)
    assert [p.parameters["x"] for p in round0] == [0.0, 1.0, 2.0, 3.0]
    observe_all(strategy, round0, [1.0, 4.0, 2.0, 3.0])

    round1 = strategy.propose(1)  # survivors, back in enumeration order
    assert [p.parameters["x"] for p in round1] == [1.0, 3.0]
    assert all(p.horizon == 0.5 for p in round1)
    observe_all(strategy, round1, [5.0, 9.0])

    round2 = strategy.propose(2)
    assert [p.parameters["x"] for p in round2] == [3.0]
    assert round2[0].horizon == 1.0
    observe_all(strategy, round2, [7.0])

    assert strategy.done()
    assert strategy.survivors() == [{"x": 3.0}]


def test_halving_rounds_are_strictly_ordered():
    strategy = SuccessiveHalvingStrategy({"x": [0.0, 1.0, 2.0, 3.0]}, eta=2)
    with pytest.raises(ConfigurationError, match="strictly round-ordered"):
        strategy.propose(1)


def test_halving_observation_count_mismatch_raises():
    strategy = SuccessiveHalvingStrategy({"x": [0.0, 1.0, 2.0, 3.0]}, eta=2)
    proposals = strategy.propose(0)
    with pytest.raises(ConfigurationError, match="observed"):
        observe_all(strategy, proposals[:2], [1.0, 2.0])


def test_halving_seeded_pool_matches_the_random_sampler():
    axes = {"x": [float(i) for i in range(10)]}
    halving = SuccessiveHalvingStrategy(axes, budget=4, seed=3)
    sampled = RandomStrategy(axes, budget=4, seed=3).propose(0)
    assert [dict(p.parameters) for p in halving.propose(0)] == [
        dict(p.parameters) for p in sampled
    ]


def test_halving_rejects_seed_without_a_sub_grid_budget():
    with pytest.raises(ConfigurationError, match="sub-grid budget"):
        SuccessiveHalvingStrategy(AXES, seed=1)
    with pytest.raises(ConfigurationError, match="sub-grid budget"):
        SuccessiveHalvingStrategy(AXES, budget=6, seed=1)  # == grid size


def test_halving_validates_eta_and_min_horizon():
    with pytest.raises(ConfigurationError, match="eta"):
        SuccessiveHalvingStrategy(AXES, eta=1)
    with pytest.raises(ConfigurationError, match="min_horizon"):
        SuccessiveHalvingStrategy(AXES, min_horizon=0.0)


def test_min_horizon_caps_the_schedule_depth():
    # 81 candidates at eta=3 would want horizons 1/27..1, but the floor
    # at 1/9 trims the schedule to three rounds
    axes = {"x": [float(i) for i in range(81)]}
    strategy = SuccessiveHalvingStrategy(axes, min_horizon=1.0 / 9.0)
    assert strategy.horizons[0] >= 1.0 / 9.0
    assert strategy.horizons[-1] == 1.0


# ---------------------------------------------------------------------- #
# registry
# ---------------------------------------------------------------------- #
def test_make_strategy_builds_every_registered_name():
    for name in EXPLORE_STRATEGIES:
        kwargs = {}
        if name in ("random", "latin"):
            kwargs = {"budget": 3, "seed": 1}
        strategy = make_strategy(name, AXES, **kwargs)
        assert strategy.name == name


def test_make_strategy_rejects_unknown_names_listing_the_registry():
    with pytest.raises(ConfigurationError, match="halving"):
        make_strategy("annealing", AXES)


def test_make_strategy_rejects_budget_and_seed_on_dense_grids():
    with pytest.raises(ConfigurationError, match="budget"):
        make_strategy("grid", AXES, budget=3)
    with pytest.raises(ConfigurationError, match="seed"):
        make_strategy("extend", AXES, seed=1)


def test_proposal_validates_its_horizon():
    with pytest.raises(ConfigurationError, match="horizon"):
        Proposal(parameters={"x": 1.0}, horizon=0.0)
    with pytest.raises(ConfigurationError, match="horizon"):
        Proposal(parameters={"x": 1.0}, horizon=1.5)
