"""Exploration strategies driven end-to-end through the facade.

The headline contracts of the exploration refactor:

* ``explore="grid"`` is byte-identical to the dense sweep it replaced,
  on every backend;
* grid extension serves every previously swept point from the result
  cache (``n_cache_hits == len(subset grid)``);
* seeded sampling is deterministic across worker counts and across
  fresh interpreter processes;
* halving recovers the dense-grid winner at a fraction of the work, and
  its final score is a true full-horizon score;
* checkpoints compose: grid exploration resumes legacy dense-sweep
  checkpoints (and vice versa), mismatched strategies refuse.
"""

import os
import subprocess
import sys

import numpy as np
import pytest

from repro import RunOptions, Study, charging_scenario
from repro.api import ExplorationResult
from repro.core.errors import ConfigurationError
from repro.explore import grid_candidates

AXES = {"excitation_frequency_hz": [66.0, 68.0, 70.0, 74.0]}
HALVING_AXES = {
    "excitation_frequency_hz": [62.0, 66.0, 70.0, 74.0],
    "excitation_amplitude_ms2": [0.3, 0.59],
}
SAMPLE_AXES = {
    "excitation_frequency_hz": [62.0, 64.0, 66.0, 68.0, 70.0, 72.0, 74.0, 76.0],
}


def study(options, axes=AXES):
    return (
        Study.scenario(charging_scenario(duration_s=0.05))
        .options(options)
        .sweep(axes)
    )


def ranking(result):
    return [(dict(p.parameters), p.score) for p in result.points]


# ---------------------------------------------------------------------- #
# the equivalence contract: explore="grid" == the legacy dense sweep
# ---------------------------------------------------------------------- #
@pytest.mark.parametrize(
    "label,options_factory",
    [
        ("serial", lambda **kw: RunOptions(**kw)),
        ("process", lambda **kw: RunOptions(n_workers=2, **kw)),
        ("batched", lambda **kw: RunOptions.batched(lane_width=2, **kw)),
    ],
)
def test_grid_explore_is_byte_identical_to_the_dense_sweep(
    label, options_factory
):
    dense = study(options_factory()).run()
    grid = study(options_factory(explore="grid")).run()
    assert isinstance(grid, ExplorationResult)
    assert grid.strategy == "grid"
    assert ranking(grid) == ranking(dense)
    assert dict(grid.best().parameters) == dict(dense.best().parameters)
    assert grid.best().score == dense.best().score
    assert grid.work_fraction == 1.0
    assert len(grid.rounds) == 1


def test_grid_explore_plan_is_inspectable():
    plan = study(RunOptions(explore="grid")).plan()
    assert plan.kind == "explore"
    assert "grid" in plan.describe()
    assert "full-horizon" in plan.describe()


# ---------------------------------------------------------------------- #
# halving: same winner, less work
# ---------------------------------------------------------------------- #
def test_halving_recovers_the_dense_grid_winner_for_less_work():
    dense = study(RunOptions(), HALVING_AXES).run()
    halved = study(RunOptions(explore="halving"), HALVING_AXES).run()
    assert halved.strategy == "halving"
    assert dict(halved.best().parameters) == dict(dense.best().parameters)
    # the last round re-scores survivors at full horizon, so the winning
    # score is the dense sweep's exact float
    assert halved.best().score == dense.best().score
    assert halved.work_fraction < 1.0
    assert len(halved.rounds) >= 2
    assert halved.rounds[0].horizon < 1.0
    assert halved.rounds[-1].horizon == 1.0
    # survivors are reported best-first
    assert dict(halved.best().parameters) == halved.survivors[0]
    # only full-horizon points enter the final ranking
    assert all("horizon" not in p.metadata for p in halved.points)


def test_halving_composes_with_workers_and_cache(tmp_path):
    options = RunOptions(
        explore="halving",
        n_workers=2,
        cache="readwrite",
        cache_dir=str(tmp_path),
    )
    cold = study(options, HALVING_AXES).run()
    assert cold.run.n_cache_hits == 0
    warm = study(options, HALVING_AXES).run()
    assert warm.run.n_simulations == 0
    assert warm.run.n_cache_hits == cold.run.n_simulations
    assert ranking(warm) == ranking(cold)
    assert warm.work_fraction == 0.0  # cache hits cost no simulation work


def test_halving_full_horizon_entries_are_cache_compatible_with_dense(
    tmp_path,
):
    # a dense sweep warms the cache; the halving run's *final* round then
    # hits it (short-horizon rounds key on the scaled scenario and miss)
    options = RunOptions(cache="readwrite", cache_dir=str(tmp_path))
    study(options, HALVING_AXES).run()
    halved = study(options.replace(explore="halving"), HALVING_AXES).run()
    assert halved.rounds[-1].n_cache_hits == len(halved.rounds[-1].points)


# ---------------------------------------------------------------------- #
# grid extension: old points come from the cache
# ---------------------------------------------------------------------- #
def test_grid_extension_serves_the_subset_grid_from_cache(tmp_path):
    subset = {"excitation_frequency_hz": [66.0, 70.0]}
    superset = AXES

    def options(**kw):
        return RunOptions(cache="readwrite", cache_dir=str(tmp_path), **kw)

    first = study(options(), subset).run()
    extended = study(options(explore="extend"), superset).run()

    assert extended.strategy == "extend"
    assert extended.run.n_cache_hits == len(list(grid_candidates(subset)))
    assert extended.run.n_simulations == len(list(grid_candidates(superset))) - len(
        list(grid_candidates(subset))
    )
    # inherited points carry the exact cached scores
    by_freq = {
        point.parameters["excitation_frequency_hz"]: point.score
        for point in extended.points
    }
    for point in first.points:
        freq = point.parameters["excitation_frequency_hz"]
        assert by_freq[freq] == point.score


def test_grid_extension_requires_a_cache():
    with pytest.raises(ConfigurationError, match="cache"):
        RunOptions(explore="extend").validate()


# ---------------------------------------------------------------------- #
# seeded sampling: determinism across workers and processes
# ---------------------------------------------------------------------- #
def test_seeded_sampling_is_deterministic_across_worker_counts():
    serial = study(
        RunOptions(explore="random", budget=3, seed=11), SAMPLE_AXES
    ).run()
    parallel = study(
        RunOptions(explore="random", budget=3, seed=11, n_workers=2), SAMPLE_AXES
    ).run()
    assert len(serial.points) == 3
    assert ranking(serial) == ranking(parallel)


def test_seeded_sampler_proposals_survive_a_fresh_interpreter():
    # the PYTHONHASHSEED-independence contract: a brand-new process with
    # the same seed proposes the identical candidate list
    code = (
        "import json\n"
        "from repro.explore import RandomStrategy, LatinHypercubeStrategy\n"
        "axes = {'excitation_frequency_hz': "
        "[62.0, 64.0, 66.0, 68.0, 70.0, 72.0, 74.0, 76.0]}\n"
        "out = {}\n"
        "for cls in (RandomStrategy, LatinHypercubeStrategy):\n"
        "    s = cls(axes, budget=3, seed=11)\n"
        "    out[s.name] = [dict(p.parameters) for p in s.propose(0)]\n"
        "print(json.dumps(out))\n"
    )
    env = dict(os.environ, PYTHONHASHSEED="271828")
    fresh = subprocess.run(
        [sys.executable, "-c", code],
        capture_output=True,
        text=True,
        env=env,
        check=True,
    )
    import json

    from repro.explore import LatinHypercubeStrategy, RandomStrategy

    expected = {}
    for cls in (RandomStrategy, LatinHypercubeStrategy):
        strategy = cls(SAMPLE_AXES, budget=3, seed=11)
        expected[strategy.name] = [
            dict(p.parameters) for p in strategy.propose(0)
        ]
    assert json.loads(fresh.stdout) == expected


def test_seed_is_part_of_the_execution_fingerprint():
    base = RunOptions(explore="random", budget=3, seed=1)
    other = RunOptions(explore="random", budget=3, seed=2)
    assert base.fingerprint()["seed"] == 1
    assert base.fingerprint() != other.fingerprint()
    # a dense sweep records the absence of a seed explicitly
    assert RunOptions().fingerprint()["seed"] is None


# ---------------------------------------------------------------------- #
# checkpoints compose with exploration
# ---------------------------------------------------------------------- #
def test_halving_checkpoint_resumes_without_resimulating(tmp_path):
    options = RunOptions(
        explore="halving", checkpoint_path=str(tmp_path / "halving.csv")
    )
    first = study(options, HALVING_AXES).run()
    rerun = study(options, HALVING_AXES).run()
    assert rerun.run.n_simulations == 0
    assert rerun.run.n_resumed == first.run.n_simulations
    assert ranking(rerun) == ranking(first)


def test_grid_explore_resumes_a_legacy_dense_checkpoint(tmp_path):
    path = str(tmp_path / "sweep.csv")
    dense = study(RunOptions(checkpoint_path=path)).run()
    resumed = study(RunOptions(explore="grid", checkpoint_path=path)).run()
    assert resumed.run.n_resumed == len(dense.points)
    assert resumed.run.n_simulations == 0
    assert ranking(resumed) == ranking(dense)
    # and the other direction: a grid-explore checkpoint feeds a dense sweep
    fresh = str(tmp_path / "grid.csv")
    study(RunOptions(explore="grid", checkpoint_path=fresh)).run()
    legacy = study(RunOptions(checkpoint_path=fresh)).run()
    assert legacy.engine_info.n_resumed == len(dense.points)


def test_checkpoint_refuses_a_different_strategy(tmp_path):
    path = str(tmp_path / "halving.csv")
    study(RunOptions(explore="halving", checkpoint_path=path), HALVING_AXES).run()
    with pytest.raises(ConfigurationError):
        study(
            RunOptions(explore="random", budget=3, seed=1, checkpoint_path=path),
            HALVING_AXES,
        ).run()


# ---------------------------------------------------------------------- #
# options / spec plumbing
# ---------------------------------------------------------------------- #
@pytest.mark.parametrize(
    "kwargs,match",
    [
        (dict(budget=3), "without"),
        (dict(seed=1), "without"),
        (dict(explore="annealing"), "unknown exploration strategy"),
        (dict(explore="grid", budget=3), "no budget"),
        (dict(explore="extend", seed=1, cache="readwrite"), "no seed"),
        (dict(explore="random", seed=1), "needs a budget"),
        (dict(explore="latin", budget=3), "needs a seed"),
        (dict(explore="random", budget=0, seed=1), "at least 1"),
        (dict(explore="halving", seed=1), "seed without budget"),
        (dict(explore="extend"), "cache"),
    ],
)
def test_incoherent_explore_options_are_rejected_pairwise(kwargs, match):
    with pytest.raises(ConfigurationError, match=match):
        RunOptions(**kwargs).validate()


def test_explore_knobs_are_rejected_on_single_runs_and_comparisons():
    options = RunOptions(explore="halving")
    with pytest.raises(ConfigurationError, match="explore"):
        Study.scenario(charging_scenario(duration_s=0.05)).options(options).run()
    with pytest.raises(ConfigurationError, match="explore"):
        (
            Study.scenario(charging_scenario(duration_s=0.05))
            .options(options)
            .compare("proposed", "reference")
            .run()
        )


def test_experiment_spec_explore_section_roundtrips(tmp_path):
    from repro.api import ExperimentSpec

    toml_text = (
        'name = "roundtrip"\n'
        "[scenario]\n"
        'factory = "charging"\n'
        "duration_s = 0.05\n"
        "[sweep]\n"
        'metric = "harvested_energy"\n'
        "[sweep.axes]\n"
        "excitation_frequency_hz = [66.0, 70.0]\n"
        "[explore]\n"
        'strategy = "random"\n'
        "budget = 2\n"
        "seed = 11\n"
    )
    path = tmp_path / "explore.toml"
    path.write_text(toml_text)
    loaded = ExperimentSpec.load(str(path))
    assert loaded.options.explore == "random"
    assert loaded.options.budget == 2
    assert loaded.options.seed == 11
    assert "random" in loaded.describe()

    # dict round-trip preserves the content hash and the [explore] shape
    data = loaded.to_dict()
    assert data["explore"] == {"strategy": "random", "budget": 2, "seed": 11}
    for knob in ("explore", "budget", "seed"):
        assert knob not in data.get("options", {})
    again = ExperimentSpec.from_dict(data)
    assert again.content_hash() == loaded.content_hash()

    # the strategy configuration is part of the experiment identity
    reseeded = loaded.with_options(seed=12)
    assert reseeded.content_hash() != loaded.content_hash()
    dense = loaded.with_options(explore=None, budget=None, seed=None)
    assert dense.content_hash() != loaded.content_hash()


# ---------------------------------------------------------------------- #
# satellite: comparison legs fan out across workers
# ---------------------------------------------------------------------- #
def test_compare_fans_legs_across_workers_with_identical_results():
    scenario = charging_scenario(duration_s=0.02)
    serial = Study.scenario(scenario).compare("proposed", "reference").run()
    parallel = (
        Study.scenario(scenario)
        .options(RunOptions(n_workers=2))
        .compare("proposed", "reference")
        .run()
    )
    assert serial.solvers() == parallel.solvers()
    for name in serial.solvers():
        for trace in serial[name].trace_names():
            assert np.array_equal(
                serial[name][trace].values, parallel[name][trace].values
            )


def test_parallel_compare_serves_legs_from_the_cache(tmp_path):
    options = RunOptions(
        n_workers=2, cache="readwrite", cache_dir=str(tmp_path)
    )
    studies = (
        Study.scenario(charging_scenario(duration_s=0.02))
        .options(options)
        .compare("proposed", "reference")
    )
    cold = studies.run()
    assert cold["proposed"].metadata["cache"] == "miss"
    warm = studies.run()
    assert warm["proposed"].metadata["cache"] == "hit"
    assert warm["reference"].metadata["cache"] == "hit"
