"""CLI surfaces of the exploration layer: explore, sweep --extend, scenarios."""

import json

import pytest

from repro.cli import main

SWEEP_TOML = """\
name = "cli_sweep"

[scenario]
factory = "charging"
duration_s = 0.05

[sweep]
metric = "harvested_energy"

[sweep.axes]
excitation_frequency_hz = [66.0, 70.0]
"""

EXPLORE_TOML = """\
name = "cli_explore"

[scenario]
factory = "charging"
duration_s = 0.05

[sweep]
metric = "harvested_energy"

[sweep.axes]
excitation_frequency_hz = [62.0, 66.0, 70.0, 74.0]
excitation_amplitude_ms2 = [0.3, 0.59]

[explore]
strategy = "halving"
"""


@pytest.fixture
def experiment_dir(tmp_path):
    (tmp_path / "sweep.toml").write_text(SWEEP_TOML)
    (tmp_path / "explore.toml").write_text(EXPLORE_TOML)
    return tmp_path


def run_json(capsys, argv):
    code = main(argv)
    captured = capsys.readouterr()
    assert code == 0, captured.err
    return json.loads(captured.out)


def test_explore_command_runs_the_toml_strategy(experiment_dir, capsys):
    report = run_json(
        capsys, ["explore", str(experiment_dir / "explore.toml"), "--json"]
    )
    assert report["kind"] == "explore"
    assert report["strategy"] == "halving"
    assert report["work_fraction"] < 1.0
    assert len(report["rounds"]) >= 2
    assert report["rounds"][-1]["horizon"] == 1.0


def test_explore_flags_override_the_spec(experiment_dir, capsys):
    report = run_json(
        capsys,
        [
            "explore",
            str(experiment_dir / "sweep.toml"),
            "--strategy",
            "random",
            "--budget",
            "1",
            "--seed",
            "7",
            "--json",
        ],
    )
    assert report["strategy"] == "random"
    assert len(report["points"]) == 1


def test_explore_requires_an_explore_experiment(experiment_dir, capsys):
    assert main(["explore", str(experiment_dir / "sweep.toml")]) == 2
    assert "explore experiment" in capsys.readouterr().err


def test_sweep_command_still_rejects_explore_experiments(
    experiment_dir, capsys
):
    assert main(["sweep", str(experiment_dir / "explore.toml")]) == 2
    assert "sweep experiment" in capsys.readouterr().err


def test_sweep_extend_inherits_the_subset_from_cache(experiment_dir, capsys):
    cache = ["--cache-dir", str(experiment_dir / "cache")]
    dense = run_json(
        capsys,
        ["sweep", str(experiment_dir / "sweep.toml"), *cache, "--json"],
    )
    extended = run_json(
        capsys,
        [
            "sweep",
            str(experiment_dir / "sweep.toml"),
            "--extend",
            "excitation_frequency_hz=68.0,74.0",
            *cache,
            "--json",
        ],
    )
    assert extended["kind"] == "explore"
    assert extended["strategy"] == "extend"
    assert len(extended["points"]) == 4
    assert extended["summary"]["n_cache_hits"] == len(dense["points"])
    assert extended["summary"]["n_evaluated"] == 2
    # inherited points keep their exact cached scores
    dense_scores = {
        point["parameters"]["excitation_frequency_hz"]: point["score"]
        for point in dense["points"]
    }
    extended_scores = {
        point["parameters"]["excitation_frequency_hz"]: point["score"]
        for point in extended["points"]
    }
    for freq, score in dense_scores.items():
        assert extended_scores[freq] == score


def test_sweep_extend_rejects_unknown_axes_and_bad_values(
    experiment_dir, capsys
):
    base = ["sweep", str(experiment_dir / "sweep.toml")]
    assert main([*base, "--extend", "no_such_axis=1.0"]) == 2
    assert "no such axis" in capsys.readouterr().err
    assert main([*base, "--extend", "excitation_frequency_hz=abc"]) == 2
    assert "not a number" in capsys.readouterr().err
    assert main([*base, "--extend", "excitation_frequency_hz"]) == 2
    assert "--extend" in capsys.readouterr().err


def test_scenarios_command_lists_the_factories(capsys):
    listing = run_json(capsys, ["scenarios", "--json"])
    assert "charging" in listing
    assert "scenario_1" in listing
    assert listing["scenario_1"]  # factories carry a one-line description

    assert main(["scenarios"]) == 0
    out = capsys.readouterr().out
    assert "scenario_2" in out
