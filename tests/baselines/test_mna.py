"""Tests for the SPICE-like MNA engine and the harvester equivalent circuit."""

import math

import numpy as np
import pytest

from repro.baselines.mna import Circuit, MNATransientSimulator, TransientSettings
from repro.baselines.spice import SpiceLikeHarvesterSimulator, build_harvester_circuit
from repro.core.errors import ConfigurationError
from repro.harvester.config import paper_harvester


class TestCircuitConstruction:
    def test_duplicate_element_name(self):
        circuit = Circuit()
        circuit.add_resistor("R1", "a", "0", 10.0)
        with pytest.raises(ConfigurationError):
            circuit.add_resistor("R1", "b", "0", 10.0)

    def test_invalid_values(self):
        circuit = Circuit()
        with pytest.raises(ConfigurationError):
            circuit.add_resistor("R1", "a", "0", 0.0)
        with pytest.raises(ConfigurationError):
            circuit.add_capacitor("C1", "a", "0", -1.0)
        with pytest.raises(ConfigurationError):
            circuit.add_inductor("L1", "a", "0", 0.0)

    def test_node_names_and_element_count(self):
        circuit = Circuit()
        circuit.add_voltage_source("V1", "in", "0", 1.0)
        circuit.add_resistor("R1", "in", "out", 10.0)
        circuit.add_resistor("R2", "out", "0", 10.0)
        assert circuit.node_names() == ["in", "out"]
        assert circuit.element_count() == 3

    def test_controlled_source_requires_known_branch(self):
        circuit = Circuit()
        circuit.add_ccvs("H1", "a", "0", "Lmissing", 2.0)
        with pytest.raises(ConfigurationError):
            MNATransientSimulator(circuit)


class TestTransientAnalysis:
    def test_resistive_divider(self):
        circuit = Circuit()
        circuit.add_voltage_source("V1", "in", "0", 10.0)
        circuit.add_resistor("R1", "in", "out", 1000.0)
        circuit.add_resistor("R2", "out", "0", 1000.0)
        sim = MNATransientSimulator(circuit, TransientSettings(step_size=1e-3))
        result = sim.run(1e-2)
        assert result["v(out)"].final() == pytest.approx(5.0, rel=1e-6)
        assert result["i(V1)"].final() == pytest.approx(-10.0 / 2000.0, rel=1e-6)

    def test_rc_charging_matches_analytic(self):
        r, c = 1000.0, 1e-6
        circuit = Circuit()
        circuit.add_voltage_source("V1", "in", "0", 5.0)
        circuit.add_resistor("R1", "in", "out", r)
        circuit.add_capacitor("C1", "out", "0", c)
        sim = MNATransientSimulator(circuit, TransientSettings(step_size=1e-5))
        t_end = 3 * r * c
        result = sim.run(t_end)
        expected = 5.0 * (1.0 - math.exp(-t_end / (r * c)))
        assert result["v(out)"].final() == pytest.approx(expected, rel=0.02)

    def test_rl_transient_matches_analytic(self):
        r, l = 10.0, 1e-3
        circuit = Circuit()
        circuit.add_voltage_source("V1", "in", "0", 1.0)
        circuit.add_resistor("R1", "in", "out", r)
        circuit.add_inductor("L1", "out", "0", l)
        sim = MNATransientSimulator(circuit, TransientSettings(step_size=1e-6))
        t_end = 2 * l / r
        result = sim.run(t_end)
        expected = (1.0 / r) * (1.0 - math.exp(-t_end * r / l))
        assert result["i(L1)"].final() == pytest.approx(expected, rel=0.02)

    def test_capacitor_initial_condition(self):
        circuit = Circuit()
        circuit.add_resistor("R1", "a", "0", 1000.0)
        circuit.add_capacitor("C1", "a", "0", 1e-3, initial_voltage=2.0)
        sim = MNATransientSimulator(circuit, TransientSettings(step_size=1e-3))
        result = sim.run(0.1)
        expected = 2.0 * math.exp(-0.1 / 1.0)
        assert result["v(a)"].values[0] == pytest.approx(2.0, rel=1e-6)
        assert result["v(a)"].final() == pytest.approx(expected, rel=0.02)

    def test_diode_half_wave_rectifier(self):
        circuit = Circuit()
        circuit.add_voltage_source(
            "V1", "in", "0", lambda t: 2.0 * math.sin(2 * math.pi * 100.0 * t)
        )
        circuit.add_diode("D1", "in", "out", series_resistance=10.0)
        circuit.add_resistor("RL", "out", "0", 1e4)
        circuit.add_capacitor("CL", "out", "0", 1e-6)
        sim = MNATransientSimulator(circuit, TransientSettings(step_size=5e-5))
        result = sim.run(0.05)
        peak = float(np.max(result["v(out)"].values))
        # the output approaches the peak minus one diode drop and never goes
        # significantly negative
        assert 0.8 < peak < 2.0
        assert float(np.min(result["v(out)"].values)) > -0.2

    def test_vcvs_gain(self):
        circuit = Circuit()
        circuit.add_voltage_source("V1", "a", "0", 1.0)
        circuit.add_resistor("R1", "a", "0", 1000.0)
        circuit.add_vcvs("E1", "b", "0", "a", "0", gain=5.0)
        circuit.add_resistor("R2", "b", "0", 1000.0)
        sim = MNATransientSimulator(circuit, TransientSettings(step_size=1e-3))
        result = sim.run(1e-2)
        assert result["v(b)"].final() == pytest.approx(5.0, rel=1e-6)

    def test_ccvs_transresistance(self):
        circuit = Circuit()
        circuit.add_voltage_source("V1", "a", "0", 1.0)
        circuit.add_resistor("R1", "a", "0", 100.0)  # i(V1) = -10 mA
        circuit.add_ccvs("H1", "b", "0", "V1", transresistance=200.0)
        circuit.add_resistor("R2", "b", "0", 1000.0)
        sim = MNATransientSimulator(circuit, TransientSettings(step_size=1e-3))
        result = sim.run(1e-2)
        assert result["v(b)"].final() == pytest.approx(200.0 * (-0.01), rel=1e-6)

    def test_vccs_and_cccs(self):
        circuit = Circuit()
        circuit.add_voltage_source("V1", "a", "0", 2.0)
        circuit.add_resistor("R1", "a", "0", 1000.0)
        circuit.add_vccs("G1", "0", "b", "a", "0", transconductance=1e-3)
        circuit.add_resistor("R2", "b", "0", 500.0)
        circuit.add_cccs("F1", "0", "c", "V1", gain=2.0)
        circuit.add_resistor("R3", "c", "0", 100.0)
        sim = MNATransientSimulator(circuit, TransientSettings(step_size=1e-3))
        result = sim.run(5e-3)
        # VCCS pushes 2 mA into node b across 500 ohm -> 1 V
        assert abs(result["v(b)"].final()) == pytest.approx(1.0, rel=1e-6)
        assert np.isfinite(result["v(c)"].final())

    def test_invalid_run_interval(self):
        circuit = Circuit()
        circuit.add_resistor("R1", "a", "0", 1.0)
        sim = MNATransientSimulator(circuit)
        with pytest.raises(ConfigurationError):
            sim.run(0.0)


class TestHarvesterEquivalentCircuit:
    def test_build_produces_expected_elements(self):
        circuit = build_harvester_circuit()
        names = circuit.node_names()
        assert "vm" in names and "vc" in names
        # 5 diodes, 5 stage caps + Cin + 3 supercap caps + Cmech
        assert len(circuit.diodes) == 5
        assert len(circuit.capacitors) == 10
        assert len(circuit.ccvs) == 2

    def test_short_transient_runs_and_stays_finite(self):
        config = paper_harvester().with_initial_storage_voltage(1.0)
        sim = SpiceLikeHarvesterSimulator(
            config, settings=TransientSettings(step_size=2e-4, record_interval=1e-3)
        )
        result = sim.run(0.02)
        assert np.all(np.isfinite(result["storage_voltage"].values))
        assert result["storage_voltage"].final() == pytest.approx(1.0, abs=0.2)
        assert "coil_current" in result.traces
        assert result.metadata["baseline"].startswith("spice-like")

    def test_tuned_frequency_changes_mechanical_compliance(self):
        base = build_harvester_circuit(tuned_frequency_hz=None)
        tuned = build_harvester_circuit(tuned_frequency_hz=78.0)
        c_base = next(c for c in base.capacitors if c.name == "Cmech").capacitance
        c_tuned = next(c for c in tuned.capacitors if c.name == "Cmech").capacitance
        assert c_tuned < c_base  # stiffer spring -> smaller compliance
