"""Tests for the Newton-Raphson helper and the implicit baseline solver."""

import math

import numpy as np
import pytest

from repro.baselines.implicit_solver import ImplicitNewtonSolver, ImplicitSolverSettings
from repro.baselines.newton_raphson import newton_solve
from repro.core.block import LinearBlock
from repro.core.elimination import SystemAssembler
from repro.core.errors import ConfigurationError, ConvergenceError
from repro.core.integrators import BackwardEuler, Trapezoidal
from repro.core.netlist import Netlist


class TestNewtonSolve:
    def test_scalar_root(self):
        result = newton_solve(lambda z: np.array([z[0] ** 2 - 4.0]), np.array([3.0]))
        assert result.converged
        assert result.solution[0] == pytest.approx(2.0)

    def test_two_dimensional_system(self):
        def residual(z):
            return np.array([z[0] + z[1] - 3.0, z[0] * z[1] - 2.0])

        result = newton_solve(residual, np.array([0.5, 0.5]))
        assert sorted(result.solution) == pytest.approx([1.0, 2.0])

    def test_analytic_jacobian_path(self):
        result = newton_solve(
            lambda z: np.array([math.exp(z[0]) - 2.0]),
            np.array([0.0]),
            jacobian=lambda z: np.array([[math.exp(z[0])]]),
        )
        assert result.solution[0] == pytest.approx(math.log(2.0))
        assert result.n_jacobian_evaluations >= 1

    def test_non_convergence_raises(self):
        with pytest.raises(ConvergenceError):
            newton_solve(
                lambda z: np.array([math.atan(z[0]) * 1e6 + 1e5]),
                np.array([1e8]),
                max_iterations=2,
            )

    def test_non_convergence_can_be_tolerated(self):
        result = newton_solve(
            lambda z: np.array([z[0] ** 2 + 1.0]),
            np.array([1.0]),
            max_iterations=5,
            raise_on_failure=False,
        )
        assert not result.converged

    def test_already_converged_guess(self):
        result = newton_solve(lambda z: np.array([z[0]]), np.array([0.0]))
        assert result.iterations == 0

    def test_damping(self):
        result = newton_solve(
            lambda z: np.array([z[0] ** 3 - 8.0]), np.array([5.0]), damping=0.5
        )
        assert result.solution[0] == pytest.approx(2.0)


def decay_assembler(rate=3.0, x0=1.0):
    netlist = Netlist()
    netlist.add_block(
        LinearBlock("d", np.array([[-rate]]), np.zeros((1, 0)), ["x"], [], x0=[x0])
    )
    return SystemAssembler(netlist)


class TestImplicitNewtonSolver:
    def test_backward_euler_decay(self):
        solver = ImplicitNewtonSolver(
            decay_assembler(rate=3.0),
            formula=BackwardEuler,
            settings=ImplicitSolverSettings(step_size=1e-2),
        )
        result = solver.run(1.0)
        assert result["d.x"].final() == pytest.approx(math.exp(-3.0), abs=0.02)
        assert result.stats.n_newton_iterations > 0

    def test_trapezoidal_is_more_accurate_than_backward_euler(self):
        be = ImplicitNewtonSolver(
            decay_assembler(),
            formula=BackwardEuler,
            settings=ImplicitSolverSettings(step_size=2e-2),
        ).run(1.0)
        trapezoid = ImplicitNewtonSolver(
            decay_assembler(),
            formula=Trapezoidal,
            settings=ImplicitSolverSettings(step_size=2e-2),
        ).run(1.0)
        exact = math.exp(-3.0)
        assert abs(trapezoid["d.x"].final() - exact) < abs(be["d.x"].final() - exact)

    def test_analytic_jacobian_matches_finite_difference_result(self):
        fd = ImplicitNewtonSolver(
            decay_assembler(), settings=ImplicitSolverSettings(step_size=1e-2)
        ).run(0.2)
        analytic = ImplicitNewtonSolver(
            decay_assembler(),
            settings=ImplicitSolverSettings(step_size=1e-2, use_analytic_jacobian=True),
        ).run(0.2)
        assert analytic["d.x"].final() == pytest.approx(fd["d.x"].final(), rel=1e-6)

    def test_probe_and_accessors(self):
        solver = ImplicitNewtonSolver(
            decay_assembler(x0=2.0), settings=ImplicitSolverSettings(step_size=1e-2)
        )
        solver.add_probe("double", lambda t, x, y: 2.0 * x[0])
        with pytest.raises(ConfigurationError):
            solver.add_probe("double", lambda t, x, y: 0.0)
        result = solver.run(0.1)
        assert result["double"].values[0] == pytest.approx(4.0)
        assert solver.state_value("d", "x") == pytest.approx(result["d.x"].final())
        assert solver.current_time == pytest.approx(0.1)

    def test_invalid_settings(self):
        with pytest.raises(ConfigurationError):
            ImplicitNewtonSolver(
                decay_assembler(), settings=ImplicitSolverSettings(step_size=0.0)
            )
        solver = ImplicitNewtonSolver(decay_assembler())
        with pytest.raises(ConfigurationError):
            solver.run(0.0)

    def test_stats_are_populated(self):
        result = ImplicitNewtonSolver(
            decay_assembler(), settings=ImplicitSolverSettings(step_size=1e-2)
        ).run(0.1)
        assert result.stats.solver_name.startswith("newton-raphson")
        assert result.stats.n_accepted_steps == 10
        assert result.stats.cpu_time_s > 0.0
