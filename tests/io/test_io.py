"""Tests for CSV trace export/import and report formatting."""

import numpy as np
import pytest

from repro.core.errors import ConfigurationError
from repro.core.results import SimulationResult, Trace
from repro.io.csvio import export_result, export_traces, import_traces
from repro.io.report import (
    format_duration,
    format_key_values,
    format_markdown_table,
    format_table,
)


def make_trace(name, offset=0.0):
    trace = Trace(name)
    times = np.linspace(0.0, 1.0, 11)
    trace.extend(times.tolist(), (times * 2.0 + offset).tolist())
    return trace


class TestCsvRoundTrip:
    def test_export_and_import(self, tmp_path):
        path = tmp_path / "out" / "traces.csv"
        export_traces([make_trace("a"), make_trace("b", offset=1.0)], path)
        loaded = import_traces(path)
        assert set(loaded) == {"a", "b"}
        assert loaded["a"].at(0.5) == pytest.approx(1.0, abs=1e-6)
        assert loaded["b"].at(0.5) == pytest.approx(2.0, abs=1e-6)

    def test_export_result_selected_traces(self, tmp_path):
        result = SimulationResult()
        result.add_trace(make_trace("x"))
        result.add_trace(make_trace("y"))
        path = export_result(result, tmp_path / "r.csv", trace_names=["x"])
        loaded = import_traces(path)
        assert list(loaded) == ["x"]

    def test_export_requires_traces_and_overlap(self, tmp_path):
        with pytest.raises(ConfigurationError):
            export_traces([], tmp_path / "x.csv")
        early = Trace("early")
        early.extend([0.0, 1.0], [0.0, 1.0])
        late = Trace("late")
        late.extend([2.0, 3.0], [0.0, 1.0])
        with pytest.raises(ConfigurationError):
            export_traces([early, late], tmp_path / "x.csv")

    def test_import_missing_or_malformed(self, tmp_path):
        with pytest.raises(ConfigurationError):
            import_traces(tmp_path / "missing.csv")
        bad = tmp_path / "bad.csv"
        bad.write_text("not,a,trace\n1,2,3\n")
        with pytest.raises(ConfigurationError):
            import_traces(bad)


class TestReportFormatting:
    def test_format_duration(self):
        assert format_duration(12.0) == "12.0 s"
        assert format_duration(125.0) == "2min 5s"
        assert format_duration(3 * 3600 + 300) == "3h 5min"
        with pytest.raises(ConfigurationError):
            format_duration(-1.0)

    def test_format_table_alignment_and_validation(self):
        text = format_table(["a", "bb"], [["1", "2"], ["333", "4"]], title="T")
        assert "T" in text
        assert "333" in text
        with pytest.raises(ConfigurationError):
            format_table(["a"], [["1", "2"]])

    def test_markdown_table(self):
        text = format_markdown_table(["x", "y"], [["1", "2"]], title="My table")
        assert text.startswith("### My table")
        assert "| x | y |" in text
        assert "| 1 | 2 |" in text

    def test_key_values(self):
        text = format_key_values({"alpha": 1, "b": "two"}, title="facts")
        assert "facts" in text
        assert "alpha : 1" in text
        assert format_key_values({}) == ""
