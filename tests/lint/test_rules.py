"""Each rule family fires on its seeded-violation fixture tree.

The fixtures under ``tests/lint/fixtures`` are never imported — the
checker is pure AST for arbitrary trees — and every assertion pins the
exact rule id and line so a rule that silently goes blind fails here.
"""

from pathlib import Path

from repro.lint import run_check

FIXTURES = Path(__file__).parent / "fixtures"


def findings_for(tree: str, family: str):
    report = run_check([FIXTURES / tree], rules=[family])
    return [(f.rule_id, f.path, f.line) for f in report.findings]


def test_fingerprint_rules_fire_with_exact_lines():
    got = findings_for("unfingerprinted", "fingerprint")
    assert ("fingerprint.stale-exemption", "api/options.py", 5) in got
    assert ("fingerprint.contradictory-exemption", "api/options.py", 6) in got
    assert ("fingerprint.missing-reason", "api/options.py", 7) in got
    assert ("fingerprint.unfingerprinted", "api/options.py", 16) in got
    # the exempt-with-reason field and the fingerprinted fields are clean
    assert not any(line in (4, 12, 13, 14) for _, _, line in got)


def test_block_protocol_rules_fire_with_exact_lines():
    got = findings_for("protocol_drift", "block-protocol")
    assert ("block-protocol.roundtrip", "blocks/bad_block.py", 11) in got
    assert ("block-protocol.signature", "blocks/bad_block.py", 17) in got
    # "jzz" is not a linearisation field at all
    assert ("block-protocol.constant-fields", "blocks/bad_block.py", 29) in got
    # "ex" is a real field but the prepared lineariser never writes it
    assert ("block-protocol.constant-fields", "blocks/bad_block.py", 30) in got
    # invalid terminal kind, then an analogue entry with no terminals
    assert ("block-protocol.registry-terminals", "blocks/bad_block.py", 40) in got
    assert ("block-protocol.registry-terminals", "blocks/bad_block.py", 44) in got
    # batched_lineariser itself has the protocol signature — no finding
    assert not any(line == 20 for _, _, line in got)


def test_kernel_purity_rules_fire_with_exact_lines():
    got = findings_for("impure_kernel", "kernel-purity")
    assert ("kernel-purity.nondeterminism", "core/kernels.py", 13) in got
    assert ("kernel-purity.forbidden-call", "core/kernels.py", 14) in got
    assert ("kernel-purity.object-mode", "core/kernels.py", 15) in got
    # _impl is compiled via the njit(cache=True)(_impl) build call and
    # closes over the mutable module global SCALE
    assert ("kernel-purity.closure", "core/kernels.py", 20) in got


def test_facade_rules_fire_with_exact_lines():
    got = findings_for("facade_bypass", "facade")
    assert ("facade.deprecated-import", "service.py", 4) in got
    assert ("facade.engine-bypass", "service.py", 10) in got
    # importing SweepEngine (not constructing) is not itself deprecated
    assert not any(
        rule == "facade.deprecated-import" and line == 3 for rule, _, line in got
    )


def test_all_consistency_rules_fire_with_exact_lines():
    got = findings_for("broken_all", "facade")
    assert ("facade.all-format", "computed.py", 3) in got
    assert ("facade.all-unresolved", "exports.py", 3) in got
    assert ("facade.all-missing", "noall.py", 1) in got
    assert len(got) == 3


def test_every_rule_family_exits_nonzero_on_its_fixture():
    for tree, family in (
        ("unfingerprinted", "fingerprint"),
        ("protocol_drift", "block-protocol"),
        ("impure_kernel", "kernel-purity"),
        ("facade_bypass", "facade"),
    ):
        report = run_check([FIXTURES / tree], rules=[family])
        assert not report.ok, f"{family} found nothing in {tree}"
        assert report.exit_code() == 1
