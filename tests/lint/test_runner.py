"""Runner behaviour: pragmas, parse errors, the live-tree gate and the
stable ``repro-check/1`` JSON schema."""

import json
from pathlib import Path

import pytest

import repro
from repro.lint import JSON_SCHEMA, RULE_FAMILIES, run_check

FIXTURES = Path(__file__).parent / "fixtures"
PACKAGE_ROOT = Path(repro.__file__).parent


def test_real_tree_is_clean():
    report = run_check([PACKAGE_ROOT])
    assert report.findings == [], "\n" + report.render_text()
    assert report.ok and report.exit_code() == 0


def test_rule_families_are_the_documented_four():
    assert sorted(RULE_FAMILIES) == [
        "block-protocol",
        "facade",
        "fingerprint",
        "kernel-purity",
    ]


def test_unknown_rule_family_raises():
    with pytest.raises(ValueError, match="unknown rule families"):
        run_check([FIXTURES / "broken_all"], rules=["nonsense"])


def test_justified_inline_pragma_suppresses_and_is_counted():
    report = run_check([FIXTURES / "pragmas"], rules=["facade"])
    assert not any(f.rule_id == "facade.engine-bypass" for f in report.findings)
    assert report.n_suppressed == 1


def test_reasonless_and_unknown_pragmas_are_findings():
    report = run_check([FIXTURES / "pragmas"], rules=["facade"])
    got = [(f.rule_id, f.path, f.line) for f in report.findings]
    assert ("pragma.missing-reason", "bad_pragmas.py", 3) in got
    assert ("pragma.unknown-rule", "bad_pragmas.py", 4) in got


def test_pragma_syntax_quoted_in_strings_is_not_a_pragma():
    # the lint package's own docstrings spell out the pragma syntax;
    # tokenised pragma extraction must not mistake them for suppressions
    report = run_check([PACKAGE_ROOT / "lint"])
    assert not any(f.rule_id.startswith("pragma.") for f in report.findings)


def test_syntax_error_file_reports_parse_error():
    report = run_check([FIXTURES / "syntaxerror"])
    got = [(f.rule_id, f.path, f.line) for f in report.findings]
    assert got == [("parse.error", "broken.py", 3)]
    assert report.exit_code() == 1


def test_json_report_schema_snapshot():
    report = run_check([FIXTURES / "broken_all"], rules=["facade"])
    doc = report.to_json_dict()
    # round-trips through the renderer unchanged
    assert json.loads(report.render_json()) == doc
    assert sorted(doc) == ["findings", "roots", "rules", "schema", "summary"]
    assert doc["schema"] == JSON_SCHEMA == "repro-check/1"
    assert doc["rules"] == ["facade"]
    assert doc["summary"] == {
        "n_files": 3,
        "n_findings": 3,
        "n_errors": 3,
        "n_warnings": 0,
        "n_suppressed": 0,
        "ok": False,
    }
    skeleton = [
        {k: f[k] for k in ("rule_id", "path", "line", "severity")}
        for f in doc["findings"]
    ]
    assert skeleton == [  # sorted by (path, line, rule_id)
        {
            "rule_id": "facade.all-format",
            "path": "computed.py",
            "line": 3,
            "severity": "error",
        },
        {
            "rule_id": "facade.all-unresolved",
            "path": "exports.py",
            "line": 3,
            "severity": "error",
        },
        {
            "rule_id": "facade.all-missing",
            "path": "noall.py",
            "line": 1,
            "severity": "error",
        },
    ]
    assert all(
        isinstance(f["message"], str) and f["message"] for f in doc["findings"]
    )


def test_text_report_format_is_path_line_rule():
    report = run_check([FIXTURES / "broken_all"], rules=["facade"])
    first = report.render_text().splitlines()[0]
    assert first.startswith("computed.py:3: [facade.all-format] ")
