"""Parse-error fixture (tests/lint fixture, never imported)."""

def broken(:
    pass
