"""Seeded __all__ violation: computed export list (tests/lint fixture)."""

__all__ = [name for name in ("a", "b")]
