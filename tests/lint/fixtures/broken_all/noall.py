"""Seeded __all__ violation: public module without __all__ (tests/lint fixture)."""

VALUE = 1
