"""Seeded __all__ violation: unresolved export (tests/lint fixture)."""

__all__ = ["real", "phantom"]


def real():
    return 1
