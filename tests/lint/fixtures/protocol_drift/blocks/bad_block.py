"""Seeded block-protocol violations (tests/lint fixture, never imported)."""

from repro.core.block import (
    AnalogueBlock,
    BatchedLinearisation,
    PreparedBlockLineariser,
)
from repro.core.registry import register_block


class WriteOnlySpec:
    def to_dict(self):
        return {}


class BadBlock(AnalogueBlock):
    def evaluate_batch(self, lanes, t, x):
        return x

    def batched_lineariser(self, lanes):
        def lineariser(t, x, y):
            return BatchedLinearisation(
                jxx=t, jxy=t, jyx=t, jyy=t, ey=t
            )

        return PreparedBlockLineariser(
            lineariser=lineariser,
            constant=(
                "jzz",
                "ex",
            ),
        )


register_block(
    "fixture_bad_kind",
    role="analogue",
    terminals=(
        ("plus", "voltage"),
        ("minus", "vapor"),
    ),
)

register_block(
    "fixture_no_terminals",
    role="analogue",
)
