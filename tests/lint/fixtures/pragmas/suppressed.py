"""Pragma suppression fixture (tests/lint fixture, never imported)."""

__all__ = ["make"]


def make(spec):
    return SweepEngine(spec)  # repro-lint: disable=facade.engine-bypass -- fixture exercises inline suppression
