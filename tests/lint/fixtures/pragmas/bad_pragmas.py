"""Pragma violation fixture (tests/lint fixture, never imported)."""

# repro-lint: disable=facade
# repro-lint: disable=made-up.rule -- the rule id does not exist

__all__ = []
