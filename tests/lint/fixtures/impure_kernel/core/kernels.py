"""Seeded kernel-purity violations (tests/lint fixture, never imported)."""

import numpy as np
from numba import njit

SCALE = [2.0]


@njit(cache=True)
def bad_decorated(n):
    total = 0.0
    for i in range(n):
        total += np.random.random()
    print(total)
    table = {1: 2}
    return total + table[1]


def _impl(x):
    return x * SCALE[0]


fast_impl = njit(cache=True)(_impl)
