"""Seeded facade violations (tests/lint fixture, never imported)."""

from repro.analysis.engine import SweepEngine
from repro.harvester.scenarios import run_proposed

__all__ = ["build"]


def build(spec):
    engine = SweepEngine(spec)
    return run_proposed(engine)
