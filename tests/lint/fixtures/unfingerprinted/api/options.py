"""Seeded fingerprint-coverage violations (tests/lint fixture, never imported)."""

FINGERPRINT_EXEMPT = {
    "n_workers": "scheduling only; results are parallelism-independent",
    "ghost": "entry for a field that does not exist on RunOptions",
    "backend": "contradiction: fingerprint() below reads this field",
    "cache": "short",
}


class RunOptions:
    integrator: object = None
    backend: str = "process"
    n_workers: int = 1
    cache: str = "off"
    lane_width: int = 0

    def fingerprint(self):
        return {"integrator": self.integrator, "backend": self.backend}
