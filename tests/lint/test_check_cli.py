"""The ``repro check`` subcommand: exit codes, JSON mode, rule selection."""

import json
from pathlib import Path

from repro.cli import main

FIXTURES = Path(__file__).parent / "fixtures"


def test_check_defaults_to_clean_installed_package(capsys):
    assert main(["check"]) == 0
    out = capsys.readouterr().out
    assert "repro check: clean" in out


def test_check_json_on_fixture_exits_nonzero(capsys):
    code = main(["check", str(FIXTURES / "facade_bypass"), "--json"])
    assert code == 1
    doc = json.loads(capsys.readouterr().out)
    assert doc["schema"] == "repro-check/1"
    assert doc["summary"]["ok"] is False
    rule_ids = {f["rule_id"] for f in doc["findings"]}
    assert "facade.engine-bypass" in rule_ids
    assert "facade.deprecated-import" in rule_ids


def test_check_rule_filter_restricts_families(capsys):
    code = main(
        [
            "check",
            str(FIXTURES / "facade_bypass"),
            "--rule",
            "kernel-purity",
            "--json",
        ]
    )
    assert code == 0
    doc = json.loads(capsys.readouterr().out)
    assert doc["rules"] == ["kernel-purity"]
    assert doc["findings"] == []


def test_check_list_rules(capsys):
    assert main(["check", "--list-rules"]) == 0
    out = capsys.readouterr().out
    for family in ("fingerprint", "block-protocol", "kernel-purity", "facade"):
        assert f"{family}: " in out


def test_check_unknown_rule_is_a_usage_error(capsys):
    assert main(["check", "--rule", "nonsense"]) == 2
    assert "unknown rule families" in capsys.readouterr().err


def test_check_missing_root_is_a_usage_error(capsys):
    assert main(["check", str(FIXTURES / "does_not_exist")]) == 2
    assert "not a directory" in capsys.readouterr().err
