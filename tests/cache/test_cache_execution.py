"""Cache-aware execution: planner single runs and engine sweeps.

The headline contract: enabling the cache never changes results — a
cache-off run, a cold ``readwrite`` run and a warm all-hits rerun produce
byte-identical scores and traces, on every backend (serial scalar,
process workers, batched lanes).  Corruption degrades to a recomputing
miss with a warning; ``read`` mode never writes; a code-version salt
bump invalidates everything.
"""

import warnings

import numpy as np
import pytest

import repro.cache.store as cache_store
from repro import RunOptions, Study, charging_scenario
from repro.cache import ResultStore


def single_study(tmp_path, mode="readwrite", **overrides):
    options = RunOptions(cache=mode, cache_dir=str(tmp_path), **overrides)
    return Study.scenario(charging_scenario(duration_s=0.05)).options(options)


SWEEP_AXES = {"excitation_frequency_hz": [66.0, 68.0, 70.0, 74.0]}


def sweep_study(options):
    return Study.scenario(charging_scenario(duration_s=0.05)).options(options).sweep(
        SWEEP_AXES
    )


# ---------------------------------------------------------------------- #
# single runs (planner path)
# ---------------------------------------------------------------------- #
def test_single_run_miss_then_hit_is_byte_identical(tmp_path):
    cold = single_study(tmp_path).run()
    assert cold.metadata["cache"] == "miss"
    warm = single_study(tmp_path).run()
    assert warm.metadata["cache"] == "hit"

    plain = Study.scenario(charging_scenario(duration_s=0.05)).run()
    assert "cache" not in plain.metadata  # cache off: no stamping
    for name in plain.trace_names():
        assert np.array_equal(warm[name].times, plain[name].times)
        assert np.array_equal(warm[name].values, plain[name].values)
    assert warm.stats.n_accepted_steps == plain.stats.n_accepted_steps


def test_single_run_read_mode_never_writes(tmp_path):
    first = single_study(tmp_path, mode="read").run()
    assert first.metadata["cache"] == "miss"
    second = single_study(tmp_path, mode="read").run()
    assert second.metadata["cache"] == "miss"
    assert ResultStore(tmp_path).stats()["n_entries"] == 0


def test_single_run_store_traces_off(tmp_path):
    single_study(tmp_path, store_traces=False).run()
    warm = single_study(tmp_path, store_traces=False).run()
    assert warm.metadata["cache"] == "hit"
    assert warm.trace_names() == []
    with pytest.raises(KeyError):
        warm["storage_voltage"]


def test_corrupt_entry_degrades_to_recomputed_miss(tmp_path):
    single_study(tmp_path).run()
    store = ResultStore(tmp_path)
    (key, _), = list(store.entries())
    (store._entry_dir(key) / "entry.json").write_text("{broken")

    with warnings.catch_warnings(record=True) as caught:
        warnings.simplefilter("always")
        rerun = single_study(tmp_path).run()
    assert rerun.metadata["cache"] == "miss"
    assert any("corrupt" in str(w.message) for w in caught)
    # readwrite mode replaced the broken entry with a good one
    assert single_study(tmp_path).run().metadata["cache"] == "hit"


def test_salt_bump_invalidates_single_run_entries(tmp_path, monkeypatch):
    single_study(tmp_path).run()
    monkeypatch.setattr(
        cache_store, "code_version_salt", lambda: "repro-99.0+schema1"
    )
    assert single_study(tmp_path).run().metadata["cache"] == "miss"


def test_compare_legs_cache_individually(tmp_path):
    study = single_study(tmp_path).compare("proposed", "reference")
    cold = study.run()
    assert cold["proposed"].metadata["cache"] == "miss"
    warm = study.run()
    assert warm["proposed"].metadata["cache"] == "hit"
    assert warm["reference"].metadata["cache"] == "hit"
    assert np.array_equal(
        warm["proposed"]["storage_voltage"].values,
        cold["proposed"]["storage_voltage"].values,
    )


# ---------------------------------------------------------------------- #
# sweeps (engine path, all three backends)
# ---------------------------------------------------------------------- #
@pytest.mark.parametrize(
    "label,options_factory",
    [
        ("serial", lambda d: RunOptions(cache="readwrite", cache_dir=d)),
        (
            "process",
            lambda d: RunOptions(n_workers=2, cache="readwrite", cache_dir=d),
        ),
        (
            "batched",
            lambda d: RunOptions.batched(
                lane_width=2, cache="readwrite", cache_dir=d
            ),
        ),
    ],
)
def test_sweep_cache_is_byte_identical_on_every_backend(
    tmp_path, label, options_factory
):
    cache_dir = str(tmp_path / label)
    baseline_options = options_factory(cache_dir).replace(
        cache="off", cache_dir=None
    )
    baseline = sweep_study(baseline_options).run()

    cold = sweep_study(options_factory(cache_dir)).run()
    assert cold.engine_info.n_cache_hits == 0
    warm = sweep_study(options_factory(cache_dir)).run()
    assert warm.engine_info.n_cache_hits == len(warm.points)
    assert warm.engine_info.n_evaluated == 0

    baseline_scores = [point.score for point in baseline.points]
    assert [point.score for point in cold.points] == baseline_scores
    assert [point.score for point in warm.points] == baseline_scores


def test_sweep_cache_read_mode_never_writes(tmp_path):
    options = RunOptions(cache="read", cache_dir=str(tmp_path))
    result = sweep_study(options).run()
    assert result.engine_info.n_cache_hits == 0
    assert ResultStore(tmp_path).stats()["n_entries"] == 0


def test_sweep_workers_write_the_entries(tmp_path):
    options = RunOptions(n_workers=2, cache="readwrite", cache_dir=str(tmp_path))
    sweep_study(options).run()
    stats = ResultStore(tmp_path).stats()
    assert stats["n_points"] == len(SWEEP_AXES["excitation_frequency_hz"])


def test_sweep_cache_keys_differ_across_backends(tmp_path):
    # the execution fingerprint covers the backend (documented adaptive
    # shared-step tolerance), so a process-cold cache gives the batched
    # backend no hits — hits never lie about what produced them
    cache_dir = str(tmp_path)
    sweep_study(RunOptions(cache="readwrite", cache_dir=cache_dir)).run()
    batched = sweep_study(
        RunOptions.batched(lane_width=2, cache="readwrite", cache_dir=cache_dir)
    ).run()
    assert batched.engine_info.n_cache_hits == 0


def test_sweep_cache_and_checkpoint_share_one_fingerprint(tmp_path):
    """The satellite bugfix: one canonical options-fingerprint helper."""
    from repro.analysis.engine import SweepEngine
    from repro.api.options import execution_fingerprint

    engine = SweepEngine(
        relinearise_interval=3, backend="batched", _facade=True
    )
    fingerprint = engine._execution_fingerprint(None, None)
    assert fingerprint == execution_fingerprint(
        relinearise_interval=3, backend="batched"
    )
    assert fingerprint == RunOptions.batched(
        relinearise_interval=3
    ).fingerprint()

    # and the checkpoint grid hash moves with the shared fingerprint
    sweep = sweep_study(RunOptions()).plan().sweep
    exact = SweepEngine(_facade=True)._checkpoint_metadata(sweep, None, None)
    held = SweepEngine(relinearise_interval=3, _facade=True)._checkpoint_metadata(
        sweep, None, None
    )
    assert exact["grid"] != held["grid"]


def test_sweep_cache_rejects_custom_metrics_by_name(tmp_path):
    # a custom callable has no canonical identity to key entries on; a
    # free-form label collision would serve one metric's scores as
    # another's, so the engine refuses loudly instead
    from repro.core.errors import ConfigurationError

    def my_metric(result):
        return 1.0

    study = (
        Study.scenario(charging_scenario(duration_s=0.05))
        .options(RunOptions(cache="readwrite", cache_dir=str(tmp_path)))
        .sweep(SWEEP_AXES, metric=my_metric)
    )
    with pytest.raises(ConfigurationError, match="my_metric"):
        study.run()


def test_unwritable_cache_degrades_to_uncached_run(tmp_path):
    # cache_dir nested under a regular file: every store write raises
    # OSError even when running as root — the finished simulation must
    # survive with a warning, not crash
    blocker = tmp_path / "blocker"
    blocker.write_text("not a directory")
    bad_dir = str(blocker / "cache")

    with warnings.catch_warnings(record=True) as caught:
        warnings.simplefilter("always")
        run = (
            Study.scenario(charging_scenario(duration_s=0.05))
            .options(RunOptions(cache="readwrite", cache_dir=bad_dir))
            .run()
        )
        sweep = sweep_study(
            RunOptions(cache="readwrite", cache_dir=bad_dir)
        ).run()
    assert run.metadata["cache"] == "miss"
    assert len(sweep.points) == len(SWEEP_AXES["excitation_frequency_hz"])
    assert sum("unwritable" in str(w.message) for w in caught) >= 2


def test_salt_bump_invalidates_sweep_entries(tmp_path, monkeypatch):
    options = RunOptions(cache="readwrite", cache_dir=str(tmp_path))
    sweep_study(options).run()
    monkeypatch.setattr(
        cache_store, "code_version_salt", lambda: "repro-99.0+schema1"
    )
    rerun = sweep_study(options).run()
    assert rerun.engine_info.n_cache_hits == 0
