"""Storage contract of the content-addressed result store.

Hit/miss addressing, byte-identical trace round-trips, validate-on-load
corruption handling, code-version-salt invalidation and the maintenance
surface (`entries`/`stats`/`gc`/`clear`) — parameterised over all three
store backends (local directory, in-memory, TCP key-value server), so
the contract is one contract wherever the bytes live.  The local-layout
tests at the bottom additionally pin the on-disk format byte for byte:
caches written before backends existed must keep working.
"""

import json
import threading
import uuid

import numpy as np
import pytest

from repro.cache import ResultStore, code_version_salt, open_store
from repro.cache.store import CACHE_SCHEMA_VERSION
from repro.core.errors import CacheCorruptionError, ConfigurationError
from repro.core.results import SimulationResult, SolverStats, Trace
from repro.dist.backends import MemoryBackend, SocketKVBackend
from repro.dist.kv import KVServer


def make_result() -> SimulationResult:
    result = SimulationResult(
        stats=SolverStats(
            solver_name="proposed", cpu_time_s=0.25, n_accepted_steps=10,
            final_time=0.1,
        ),
        metadata={"scenario": "unit", "controller_events": [(0.1, "wake")]},
    )
    trace = Trace("storage_voltage", "V")
    trace.extend([0.0, 0.05, 0.1], [0.0, 1.5, 2.25])
    result.add_trace(trace)
    return result


PAYLOAD = {"kind": "single", "scenario": {"name": "unit"}}


@pytest.fixture(params=["local", "memory", "socket"])
def store_factory(request, tmp_path):
    """Builds stores over one shared backend of the parameterised flavour.

    The factory form (rather than a plain store) lets salt-sensitive
    tests open several differently-salted stores over the *same* bytes.
    """
    if request.param == "local":
        yield lambda salt=None: ResultStore(tmp_path, salt=salt)
    elif request.param == "memory":
        backend = MemoryBackend(name=f"test-{uuid.uuid4().hex}")
        yield lambda salt=None: ResultStore(backend=backend, salt=salt)
    else:
        server = KVServer(("127.0.0.1", 0))
        thread = threading.Thread(
            target=server.serve_forever,
            kwargs={"poll_interval": 0.05},
            daemon=True,
        )
        thread.start()
        host, port = server.server_address[:2]
        yield lambda salt=None: ResultStore(
            backend=SocketKVBackend(host, port), salt=salt
        )
        server.shutdown()
        server.server_close()
        thread.join(timeout=5.0)


@pytest.fixture
def store(store_factory):
    return store_factory()


def corrupt_entry(store: ResultStore, key: str, data: bytes) -> None:
    """Overwrite one entry's metadata blob (backend-generic tampering)."""
    store.backend.put(key, {"entry.json": data})


def drop_traces(store: ResultStore, key: str) -> None:
    """Remove an entry's trace payload but keep its metadata."""
    entry = store.backend.get(key, "entry.json")
    assert entry is not None
    assert store.backend.delete(key)
    store.backend.put(key, {"entry.json": entry})


def test_store_and_load_run_round_trips_traces_exactly(store):
    key = store.key_for(PAYLOAD)
    assert store.load_run(key) is None  # miss before any write
    store.store_run(key, make_result(), label="unit/proposed")

    loaded = store.load_run(key)
    assert loaded is not None
    original = make_result()
    assert loaded.stats == original.stats
    trace = loaded["storage_voltage"]
    assert trace.unit == "V"
    assert np.array_equal(trace.times, original["storage_voltage"].times)
    assert np.array_equal(trace.values, original["storage_voltage"].values)
    # metadata is JSON-sanitised bookkeeping (tuples become lists)
    assert loaded.metadata["scenario"] == "unit"


def test_store_run_without_traces(store):
    key = store.key_for(PAYLOAD)
    store.store_run(key, make_result(), store_traces=False)
    loaded = store.load_run(key)
    assert loaded.stats.cpu_time_s == 0.25
    assert loaded.trace_names() == []


def test_point_round_trip_and_kind_check(store):
    key = store.key_for({"kind": "sweep_point", "index": 3})
    assert store.load_point(key) is None
    store.store_point(key, score=1.25e-5, cpu_time_s=0.75, exact_rerun=True)
    assert store.load_point(key) == {
        "score": 1.25e-5,
        "cpu_time_s": 0.75,
        "exact_rerun": True,
    }
    # a run lookup on a point entry is corruption, not a silent miss
    with pytest.raises(CacheCorruptionError, match="kind"):
        store.load_run(key)


def test_key_depends_on_payload_and_salt(store_factory):
    store = store_factory()
    assert store.key_for(PAYLOAD) == store.key_for(dict(PAYLOAD))
    assert store.key_for(PAYLOAD) != store.key_for({**PAYLOAD, "kind": "x"})
    other = store_factory(salt="other-version")
    assert store.key_for(PAYLOAD) != other.key_for(PAYLOAD)


def test_unserialisable_payload_is_rejected(store):
    with pytest.raises(ConfigurationError, match="canonical JSON"):
        store.key_for({"scenario": object()})


def test_corrupt_entry_json_raises_on_load(store):
    key = store.key_for(PAYLOAD)
    store.store_run(key, make_result())
    corrupt_entry(store, key, b"{not json")
    with pytest.raises(CacheCorruptionError, match="unreadable"):
        store.load_run(key)


def test_missing_trace_payload_is_corruption(store):
    key = store.key_for(PAYLOAD)
    store.store_run(key, make_result())
    drop_traces(store, key)
    with pytest.raises(CacheCorruptionError, match="traces"):
        store.load_run(key)


def test_schema_bump_is_corruption_and_gc_reclaims(store):
    key = store.key_for(PAYLOAD)
    store.store_run(key, make_result())
    meta = json.loads(store.backend.get(key, "entry.json").decode())
    meta["schema"] = CACHE_SCHEMA_VERSION + 1
    corrupt_entry(store, key, json.dumps(meta).encode())
    with pytest.raises(CacheCorruptionError, match="schema"):
        store.load_run(key)


def test_stale_salt_entries_are_never_served_and_gc_reclaims(store_factory):
    old = store_factory(salt="repro-0.9")
    old_key = old.key_for(PAYLOAD)
    old.store_run(old_key, make_result())

    new = store_factory(salt="repro-1.0")
    # addressing includes the salt: the stale entry is simply unreachable
    assert new.key_for(PAYLOAD) != old_key
    assert new.load_run(new.key_for(PAYLOAD)) is None
    # a hand-moved entry (same key, wrong recorded salt) is corruption
    with pytest.raises(CacheCorruptionError, match="salt"):
        new.load_run(old_key)

    descriptors = dict(new.entries())
    assert descriptors[old_key]["stale"] is True
    assert new.gc() == 1
    assert list(new.entries()) == []


def test_stats_and_clear(store):
    run_key = store.key_for(PAYLOAD)
    store.store_run(run_key, make_result())
    store.store_point(
        store.key_for({"kind": "sweep_point"}),
        score=1.0,
        cpu_time_s=0.1,
        exact_rerun=False,
    )
    stats = store.stats()
    assert stats["n_entries"] == 2
    assert stats["n_runs"] == 1
    assert stats["n_points"] == 1
    assert stats["total_bytes"] > 0
    assert stats["root"] == store.location
    assert store.clear() == 2
    assert store.stats()["n_entries"] == 0


def test_default_salt_tracks_package_version():
    assert "repro-" in code_version_salt()
    assert f"schema{CACHE_SCHEMA_VERSION}" in code_version_salt()


# ---------------------------------------------------------------------- #
# local-layout pins: the on-disk format is a compatibility contract
# ---------------------------------------------------------------------- #
def test_local_layout_is_byte_identical_to_the_historical_format(tmp_path):
    store = ResultStore(tmp_path)
    key = store.key_for(PAYLOAD)
    store.store_run(key, make_result(), label="unit/proposed")
    entry_dir = tmp_path / key[:2] / key
    assert entry_dir == store._entry_dir(key)
    assert sorted(p.name for p in entry_dir.iterdir()) == [
        "entry.json",
        "traces.npz",
    ]
    text = (entry_dir / "entry.json").read_text()
    meta = json.loads(text)
    # indent-2, sorted keys, trailing newline: exactly what the store has
    # always written, so diffs against old caches stay empty
    assert text == json.dumps(meta, indent=2, sort_keys=True) + "\n"
    assert meta["key"] == key
    assert meta["salt"] == store.salt
    assert meta["schema"] == CACHE_SCHEMA_VERSION


def test_pre_backend_cache_written_by_hand_is_still_readable(tmp_path):
    """An entry laid out with plain file writes (as an old cache on disk)
    loads through the backend-delegating store unchanged."""
    store = ResultStore(tmp_path)
    key = store.key_for({"kind": "sweep_point", "legacy": True})
    entry_dir = tmp_path / key[:2] / key
    entry_dir.mkdir(parents=True)
    meta = {
        "kind": "point",
        "label": "legacy",
        "score": 2.5,
        "cpu_time_s": 0.5,
        "exact_rerun": False,
        "schema": CACHE_SCHEMA_VERSION,
        "salt": store.salt,
        "key": key,
        "created_at": 0.0,
    }
    (entry_dir / "entry.json").write_text(
        json.dumps(meta, indent=2, sort_keys=True) + "\n"
    )
    assert store.load_point(key) == {
        "score": 2.5,
        "cpu_time_s": 0.5,
        "exact_rerun": False,
    }


def test_url_stores_have_no_local_root(tmp_path):
    memory = open_store(store_url=f"memory://root-{uuid.uuid4().hex}")
    assert memory.location.startswith("memory://")
    with pytest.raises(ConfigurationError, match="root"):
        memory.root
    local = open_store(cache_dir=tmp_path)
    assert local.root == tmp_path
    with pytest.raises(ConfigurationError, match="store_url"):
        open_store(cache_dir=tmp_path, store_url="memory://both")
