"""Storage contract of the content-addressed result store.

Hit/miss addressing, byte-identical trace round-trips, validate-on-load
corruption handling, code-version-salt invalidation and the maintenance
surface (`entries`/`stats`/`gc`/`clear`).
"""

import json

import numpy as np
import pytest

from repro.cache import ResultStore, code_version_salt
from repro.cache.store import CACHE_SCHEMA_VERSION
from repro.core.errors import CacheCorruptionError, ConfigurationError
from repro.core.results import SimulationResult, SolverStats, Trace


def make_result() -> SimulationResult:
    result = SimulationResult(
        stats=SolverStats(
            solver_name="proposed", cpu_time_s=0.25, n_accepted_steps=10,
            final_time=0.1,
        ),
        metadata={"scenario": "unit", "controller_events": [(0.1, "wake")]},
    )
    trace = Trace("storage_voltage", "V")
    trace.extend([0.0, 0.05, 0.1], [0.0, 1.5, 2.25])
    result.add_trace(trace)
    return result


PAYLOAD = {"kind": "single", "scenario": {"name": "unit"}}


def test_store_and_load_run_round_trips_traces_exactly(tmp_path):
    store = ResultStore(tmp_path)
    key = store.key_for(PAYLOAD)
    assert store.load_run(key) is None  # miss before any write
    store.store_run(key, make_result(), label="unit/proposed")

    loaded = store.load_run(key)
    assert loaded is not None
    original = make_result()
    assert loaded.stats == original.stats
    trace = loaded["storage_voltage"]
    assert trace.unit == "V"
    assert np.array_equal(trace.times, original["storage_voltage"].times)
    assert np.array_equal(trace.values, original["storage_voltage"].values)
    # metadata is JSON-sanitised bookkeeping (tuples become lists)
    assert loaded.metadata["scenario"] == "unit"


def test_store_run_without_traces(tmp_path):
    store = ResultStore(tmp_path)
    key = store.key_for(PAYLOAD)
    store.store_run(key, make_result(), store_traces=False)
    loaded = store.load_run(key)
    assert loaded.stats.cpu_time_s == 0.25
    assert loaded.trace_names() == []


def test_point_round_trip_and_kind_check(tmp_path):
    store = ResultStore(tmp_path)
    key = store.key_for({"kind": "sweep_point", "index": 3})
    assert store.load_point(key) is None
    store.store_point(key, score=1.25e-5, cpu_time_s=0.75, exact_rerun=True)
    assert store.load_point(key) == {
        "score": 1.25e-5,
        "cpu_time_s": 0.75,
        "exact_rerun": True,
    }
    # a run lookup on a point entry is corruption, not a silent miss
    with pytest.raises(CacheCorruptionError, match="kind"):
        store.load_run(key)


def test_key_depends_on_payload_and_salt(tmp_path):
    store = ResultStore(tmp_path)
    assert store.key_for(PAYLOAD) == store.key_for(dict(PAYLOAD))
    assert store.key_for(PAYLOAD) != store.key_for({**PAYLOAD, "kind": "x"})
    other = ResultStore(tmp_path, salt="other-version")
    assert store.key_for(PAYLOAD) != other.key_for(PAYLOAD)


def test_unserialisable_payload_is_rejected(tmp_path):
    store = ResultStore(tmp_path)
    with pytest.raises(ConfigurationError, match="canonical JSON"):
        store.key_for({"scenario": object()})


def test_corrupt_entry_json_raises_on_load(tmp_path):
    store = ResultStore(tmp_path)
    key = store.key_for(PAYLOAD)
    store.store_run(key, make_result())
    entry_file = store._entry_dir(key) / "entry.json"
    entry_file.write_text("{not json")
    with pytest.raises(CacheCorruptionError, match="unreadable"):
        store.load_run(key)


def test_missing_trace_payload_is_corruption(tmp_path):
    store = ResultStore(tmp_path)
    key = store.key_for(PAYLOAD)
    store.store_run(key, make_result())
    (store._entry_dir(key) / "traces.npz").unlink()
    with pytest.raises(CacheCorruptionError, match="traces"):
        store.load_run(key)


def test_schema_bump_is_corruption_and_gc_reclaims(tmp_path):
    store = ResultStore(tmp_path)
    key = store.key_for(PAYLOAD)
    store.store_run(key, make_result())
    entry_file = store._entry_dir(key) / "entry.json"
    meta = json.loads(entry_file.read_text())
    meta["schema"] = CACHE_SCHEMA_VERSION + 1
    entry_file.write_text(json.dumps(meta))
    with pytest.raises(CacheCorruptionError, match="schema"):
        store.load_run(key)


def test_stale_salt_entries_are_never_served_and_gc_reclaims(tmp_path):
    old = ResultStore(tmp_path, salt="repro-0.9")
    old_key = old.key_for(PAYLOAD)
    old.store_run(old_key, make_result())

    new = ResultStore(tmp_path, salt="repro-1.0")
    # addressing includes the salt: the stale entry is simply unreachable
    assert new.key_for(PAYLOAD) != old_key
    assert new.load_run(new.key_for(PAYLOAD)) is None
    # a hand-moved entry (same key, wrong recorded salt) is corruption
    with pytest.raises(CacheCorruptionError, match="salt"):
        new.load_run(old_key)

    descriptors = dict(new.entries())
    assert descriptors[old_key]["stale"] is True
    assert new.gc() == 1
    assert list(new.entries()) == []


def test_stats_and_clear(tmp_path):
    store = ResultStore(tmp_path)
    run_key = store.key_for(PAYLOAD)
    store.store_run(run_key, make_result())
    store.store_point(
        store.key_for({"kind": "sweep_point"}),
        score=1.0,
        cpu_time_s=0.1,
        exact_rerun=False,
    )
    stats = store.stats()
    assert stats["n_entries"] == 2
    assert stats["n_runs"] == 1
    assert stats["n_points"] == 1
    assert stats["total_bytes"] > 0
    assert store.clear() == 2
    assert store.stats()["n_entries"] == 0


def test_default_salt_tracks_package_version():
    assert "repro-" in code_version_salt()
    assert f"schema{CACHE_SCHEMA_VERSION}" in code_version_salt()
