"""Two processes racing ``store_run`` on one key: atomicity under fire.

Keys are content hashes, so concurrent writers of the same key write the
same bytes; the contract is that the race leaves exactly one complete,
loadable entry — never a torn directory, never stray tmp files.
"""

import multiprocessing

import numpy as np
import pytest

from repro.cache import ResultStore
from repro.core.results import SimulationResult, SolverStats, Trace


def make_result() -> SimulationResult:
    result = SimulationResult(
        stats=SolverStats(
            solver_name="proposed",
            cpu_time_s=0.25,
            n_accepted_steps=10,
            final_time=0.1,
        ),
        metadata={"scenario": "race"},
    )
    trace = Trace("storage_voltage", "V")
    trace.extend([0.0, 0.05, 0.1], [0.0, 1.5, 2.25])
    result.add_trace(trace)
    return result


def _racing_writer(root, key, barrier, rounds):
    store = ResultStore(root)
    result = make_result()
    for _ in range(rounds):
        barrier.wait(timeout=30.0)
        store.store_run(key, result, label="race")


@pytest.mark.parametrize("rounds", [5])
def test_two_processes_racing_one_key_leave_one_atomic_winner(tmp_path, rounds):
    store = ResultStore(tmp_path)
    key = store.key_for({"kind": "single", "scenario": {"name": "race"}})
    barrier = multiprocessing.Barrier(2)
    writers = [
        multiprocessing.Process(
            target=_racing_writer, args=(tmp_path, key, barrier, rounds)
        )
        for _ in range(2)
    ]
    for writer in writers:
        writer.start()
    for writer in writers:
        writer.join(timeout=60.0)
        assert writer.exitcode == 0

    # exactly one complete entry, loadable, with no torn leftovers
    entry_dir = store._entry_dir(key)
    assert sorted(path.name for path in entry_dir.iterdir()) == [
        "entry.json",
        "traces.npz",
    ]
    loaded = store.load_run(key)
    assert loaded is not None
    reference = make_result()
    assert loaded.stats == reference.stats
    assert np.array_equal(
        loaded["storage_voltage"].values, reference["storage_voltage"].values
    )
    descriptors = dict(store.entries())
    assert list(descriptors) == [key]
    assert descriptors[key].get("corrupt") is None
    assert descriptors[key]["stale"] is False
