"""Tests for the parallel sweep engine and cross-candidate assembly reuse."""

import numpy as np
import pytest

from repro.analysis.engine import SweepEngine
from repro.analysis.sweep import (
    ParameterSweep,
    average_power_metric,
    sweep_excitation_frequency,
)
from repro.core.elimination import AssemblyStructure
from repro.core.errors import ConfigurationError
from repro.harvester.scenarios import charging_scenario, prepare_assembly, run_proposed
from repro.io.csvio import read_checkpoint


def make_sweep(duration_s=0.05, frequencies=(68.0, 70.0), amplitudes=(0.4, 0.59)):
    scenario = charging_scenario(duration_s=duration_s)
    return ParameterSweep(
        scenario,
        {
            "excitation_frequency_hz": list(frequencies),
            "excitation_amplitude_ms2": list(amplitudes),
        },
        metric=average_power_metric,
        metric_name="average_power_W",
    )


class TestPreparedAssemblyReuse:
    def test_prepared_assembly_matches_cold_solve(self):
        """A reused structure must give the same SimulationResult as a cold one."""
        scenario = charging_scenario(duration_s=0.05)
        structure = prepare_assembly(scenario)
        cold = run_proposed(scenario)
        warm = run_proposed(scenario, assembly_structure=structure)
        assert cold.trace_names() == warm.trace_names()
        for name in cold.trace_names():
            np.testing.assert_array_equal(cold[name].times, warm[name].times)
            np.testing.assert_array_equal(cold[name].values, warm[name].values)
        assert cold.stats.n_steps == warm.stats.n_steps

    def test_structure_is_adopted_for_matching_topology(self):
        scenario = charging_scenario(duration_s=0.05)
        harvester = scenario.build_harvester()
        structure = harvester.assembly_structure
        rebuilt = scenario.build_harvester(assembly_structure=structure)
        assert rebuilt.assembler.structure is structure

    def test_mismatched_structure_is_recomputed_not_adopted(self):
        scenario = charging_scenario(duration_s=0.05)
        harvester = scenario.build_harvester()
        # different topology: no controller changes nothing structural, but a
        # different multiplier stage count changes the state vector length
        from dataclasses import replace

        other_cfg = replace(scenario.config, multiplier_stages=4)
        other = charging_scenario(duration_s=0.05)
        other_harvester = other.build_harvester()
        assert other_harvester.assembler.n_states == harvester.assembler.n_states

        from repro.harvester.system import TunableEnergyHarvester

        smaller = TunableEnergyHarvester(
            config=other_cfg,
            with_controller=False,
            assembly_structure=harvester.assembly_structure,
        )
        assert smaller.assembler.structure is not harvester.assembly_structure
        assert smaller.assembler.n_states == harvester.assembler.n_states - 1

    def test_from_netlist_matches_assembler(self):
        scenario = charging_scenario(duration_s=0.05)
        harvester = scenario.build_harvester()
        structure = AssemblyStructure.from_netlist(harvester.netlist)
        assert structure.signature == harvester.assembly_structure.signature
        assert structure.n_states == harvester.assembler.n_states
        assert structure.n_terminals == harvester.assembler.n_terminals


class TestSweepEngineParity:
    def test_parallel_results_identical_to_serial(self):
        """Scores, parameters and ordering must match bit-for-bit."""
        sweep = make_sweep()
        serial = sweep.run()
        parallel = sweep.run(n_workers=2)
        assert parallel.engine_info.parallel
        assert len(serial.points) == len(parallel.points) == 4
        for a, b in zip(serial.points, parallel.points):
            assert a.parameters == b.parameters
            assert a.score == b.score  # exact float equality, no tolerance
        assert serial.best().parameters == parallel.best().parameters

    def test_engine_serial_matches_direct_run_proposed(self):
        """The engine's serial path reproduces the plain per-candidate loop."""
        from dataclasses import replace as dc_replace

        sweep = make_sweep(frequencies=(70.0,), amplitudes=(0.59,))
        engine_result = sweep.run()
        config = sweep.scenario.config.with_excitation(70.0, 0.59)
        scenario = dc_replace(sweep.scenario, config=config)
        direct = average_power_metric(run_proposed(scenario))
        assert engine_result.points[0].score == direct

    def test_deterministic_candidate_ordering(self):
        sweep = make_sweep()
        expected = list(sweep.candidates())
        result = sweep.run(n_workers=2)
        assert [dict(p.parameters) for p in result.points] == expected

    def test_non_picklable_metric_falls_back_to_serial(self):
        scenario = charging_scenario(duration_s=0.05)
        sweep = ParameterSweep(
            scenario,
            {"excitation_frequency_hz": [69.0, 70.0]},
            metric=lambda result: float(result["storage_voltage"].final()),
            metric_name="final_voltage_V",
        )
        with pytest.warns(UserWarning, match="falling back to serial"):
            result = sweep.run(n_workers=2)
        assert not result.engine_info.parallel
        assert len(result.points) == 2

    def test_invalid_worker_count_rejected(self):
        with pytest.raises(ConfigurationError):
            SweepEngine(0)
        with pytest.raises(ConfigurationError):
            SweepEngine(2, relinearise_interval=0)


class TestCheckpointResume:
    def test_round_trip_resume_skips_completed(self, tmp_path):
        sweep = make_sweep()
        path = tmp_path / "sweep.csv"
        full = sweep.run(checkpoint_path=str(path))
        assert full.engine_info.n_evaluated == 4

        resumed = sweep.run(checkpoint_path=str(path))
        assert resumed.engine_info.n_resumed == 4
        assert resumed.engine_info.n_evaluated == 0
        assert [p.score for p in resumed.points] == [p.score for p in full.points]

    def test_partial_checkpoint_resumes_remaining(self, tmp_path):
        sweep = make_sweep()
        path = tmp_path / "sweep.csv"
        full = sweep.run(checkpoint_path=str(path))

        # keep the header + magic + first two completed candidates
        lines = path.read_text().splitlines(keepends=True)
        path.write_text("".join(lines[:4]))

        resumed = sweep.run(n_workers=2, checkpoint_path=str(path))
        assert resumed.engine_info.n_resumed == 2
        assert resumed.engine_info.n_evaluated == 2
        assert [p.score for p in resumed.points] == [p.score for p in full.points]

    def test_torn_final_row_is_skipped(self, tmp_path):
        sweep = make_sweep()
        path = tmp_path / "sweep.csv"
        sweep.run(checkpoint_path=str(path))
        with path.open("a") as handle:
            handle.write("9,0.5")  # torn write: too few cells
        metadata, fieldnames, rows = read_checkpoint(path)
        assert len(rows) == 4  # torn row dropped
        resumed = sweep.run(checkpoint_path=str(path))
        assert resumed.engine_info.n_resumed == 4

    def test_checkpoint_with_same_names_different_values_rejected(self, tmp_path):
        """A reshaped grid must not silently reuse stale indexed scores."""
        path = tmp_path / "sweep.csv"
        make_sweep(frequencies=(68.0, 70.0)).run(checkpoint_path=str(path))
        reshaped = make_sweep(frequencies=(75.0, 78.0))  # same parameter names
        with pytest.raises(ConfigurationError, match="different sweep"):
            reshaped.run(checkpoint_path=str(path))

    def test_checkpoint_profile_change_rejected(self, tmp_path):
        """Exact and fast-profile scores must not be mixed in one checkpoint."""
        path = tmp_path / "sweep.csv"
        make_sweep().run(checkpoint_path=str(path))
        with pytest.raises(ConfigurationError, match="different sweep"):
            make_sweep().run(checkpoint_path=str(path), relinearise_interval=4)

    def test_checkpoint_of_different_sweep_rejected(self, tmp_path):
        path = tmp_path / "sweep.csv"
        make_sweep().run(checkpoint_path=str(path))
        other = ParameterSweep(
            charging_scenario(duration_s=0.05),
            {"excitation_frequency_hz": [70.0]},
            metric=average_power_metric,
            metric_name="other_metric",
        )
        with pytest.raises(ConfigurationError, match="different sweep"):
            other.run(checkpoint_path=str(path))

    def test_progress_callback_reports_best(self, tmp_path):
        sweep = make_sweep()
        seen = []
        sweep.run(progress=lambda done, total, best: seen.append((done, total, best.score)))
        assert [s[0] for s in seen] == [1, 2, 3, 4]
        assert all(s[1] == 4 for s in seen)
        # best-so-far score is monotonically non-decreasing
        scores = [s[2] for s in seen]
        assert scores == sorted(scores)


class TestFastProfile:
    def test_relinearise_hold_scores_close_and_ranking_stable(self):
        sweep = make_sweep(duration_s=0.08)
        exact = sweep.run()
        fast = sweep.run(relinearise_interval=3)
        assert fast.engine_info.relinearise_interval == 3
        for a, b in zip(fast.points, exact.points):
            assert a.score == pytest.approx(b.score, rel=0.15)
        assert fast.best().parameters == exact.best().parameters

    def test_hold_metadata_reported_by_solver(self):
        from dataclasses import replace

        scenario = charging_scenario(duration_s=0.05)
        from repro.harvester.scenarios import scenario_solver_settings

        settings = replace(scenario_solver_settings(scenario), relinearise_interval=4)
        result = run_proposed(scenario, settings=settings)
        assert result.metadata["relinearise_interval"] == 4
        assert result.metadata["n_jacobian_reuses"] > 0
        # roughly 3 of 4 steps reuse the held linearisation
        assert result.metadata["n_jacobian_reuses"] >= result.stats.n_steps // 2

    def test_default_interval_has_no_reuses(self):
        scenario = charging_scenario(duration_s=0.05)
        result = run_proposed(scenario)
        assert result.metadata["relinearise_interval"] == 1
        assert result.metadata["n_jacobian_reuses"] == 0


class TestConvenienceWrappers:
    def test_sweep_excitation_frequency_parallel(self):
        scenario = charging_scenario(duration_s=0.05)
        result = sweep_excitation_frequency(
            scenario, [69.0, 70.0, 71.0], n_workers=2
        )
        assert len(result.points) == 3
        serial = sweep_excitation_frequency(scenario, [69.0, 70.0, 71.0])
        assert [p.score for p in result.points] == [p.score for p in serial.points]
