"""Tests for the analysis layer: power, frequency, waveforms, speedup tables."""

import math

import numpy as np
import pytest

from repro.analysis.frequency import (
    detect_frequency_fft,
    detect_frequency_zero_crossing,
    frequency_mismatch,
    required_tuning_force,
    resonant_frequency,
    tuned_frequency,
)
from repro.analysis.power import (
    average_power,
    energy,
    power_before_after,
    rms_value,
    windowed_rms_power,
)
from repro.analysis.speedup import SpeedupTable, TimingEntry, speedup
from repro.analysis.waveforms import compare_traces, correlation_coefficient, normalised_rms_error
from repro.core.errors import ConfigurationError
from repro.core.results import SimulationResult, SolverStats, Trace


def sinusoid_trace(frequency=50.0, amplitude=2.0, duration=0.2, n=2001, name="v"):
    times = np.linspace(0.0, duration, n)
    trace = Trace(name)
    trace.extend(times.tolist(), (amplitude * np.sin(2 * np.pi * frequency * times)).tolist())
    return trace


class TestPowerMetrics:
    def test_rms_of_sinusoid(self):
        trace = sinusoid_trace(amplitude=2.0)
        assert rms_value(trace) == pytest.approx(2.0 / math.sqrt(2.0), rel=1e-3)

    def test_average_power_of_constant(self):
        trace = Trace("p")
        trace.extend([0.0, 1.0, 2.0], [3.0, 3.0, 3.0])
        assert average_power(trace) == pytest.approx(3.0)

    def test_energy_integration(self):
        trace = Trace("p")
        trace.extend([0.0, 1.0, 2.0], [1.0, 1.0, 1.0])
        assert energy(trace) == pytest.approx(2.0)
        assert energy(trace, 0.0, 1.0) == pytest.approx(1.0)

    def test_windowed_rms(self):
        trace = sinusoid_trace(frequency=100.0, amplitude=1.0, duration=0.1)
        windowed = windowed_rms_power(trace, window_s=0.02)
        mid = windowed.at(0.05)
        assert mid == pytest.approx(1.0 / math.sqrt(2.0), rel=0.05)

    def test_before_after_power(self):
        times = np.linspace(0.0, 2.0, 2001)
        values = np.where(times < 1.0, 4.0, 1.0)
        trace = Trace("p")
        trace.extend(times.tolist(), values.tolist())
        before, after = power_before_after(trace, event_time=1.0, window_s=0.5, settle_s=0.2)
        assert before == pytest.approx(4.0, rel=1e-3)
        assert after == pytest.approx(1.0, rel=1e-3)

    def test_errors(self):
        empty = Trace("p")
        empty.append(0.0, 1.0)
        with pytest.raises(ConfigurationError):
            average_power(empty)
        with pytest.raises(ConfigurationError):
            windowed_rms_power(empty, window_s=0.0)


class TestFrequencyAnalysis:
    def test_resonant_frequency(self):
        assert resonant_frequency(2915.0, 0.018) == pytest.approx(64.0, abs=0.5)

    def test_eq12_helpers_roundtrip(self):
        force = required_tuning_force(64.0, 71.0, 4.5)
        assert tuned_frequency(64.0, force, 4.5) == pytest.approx(71.0)
        with pytest.raises(ConfigurationError):
            required_tuning_force(64.0, 60.0, 4.5)

    def test_zero_crossing_detection(self):
        trace = sinusoid_trace(frequency=70.0, duration=0.2, n=4001)
        assert detect_frequency_zero_crossing(trace) == pytest.approx(70.0, rel=1e-3)

    def test_fft_detection(self):
        trace = sinusoid_trace(frequency=64.0, duration=0.5, n=4001)
        assert detect_frequency_fft(trace) == pytest.approx(64.0, rel=0.05)

    def test_detection_needs_enough_samples(self):
        short = Trace("v")
        short.extend([0.0, 1e-3, 2e-3], [0.0, 1.0, 0.0])
        with pytest.raises(ConfigurationError):
            detect_frequency_zero_crossing(short)
        with pytest.raises(ConfigurationError):
            detect_frequency_fft(short)

    def test_frequency_mismatch(self):
        assert frequency_mismatch(70.0, 71.0) == pytest.approx(1.0)


class TestWaveformComparison:
    def test_identical_traces(self):
        a = sinusoid_trace()
        b = sinusoid_trace()
        comparison = compare_traces(a, b)
        assert comparison.rms_error == pytest.approx(0.0, abs=1e-12)
        assert comparison.correlation == pytest.approx(1.0)

    def test_offset_trace(self):
        a = Trace("a")
        a.extend([0.0, 1.0], [0.0, 0.0])
        b = Trace("b")
        b.extend([0.0, 1.0], [1.0, 1.0])
        comparison = compare_traces(a, b)
        assert comparison.max_absolute_error == pytest.approx(1.0)

    def test_normalised_error_and_correlation(self):
        reference = sinusoid_trace(amplitude=1.0)
        candidate = sinusoid_trace(amplitude=1.05)
        assert normalised_rms_error(reference, candidate) < 0.05
        assert correlation_coefficient(reference, candidate) == pytest.approx(1.0, abs=1e-6)

    def test_non_overlapping_traces_rejected(self):
        a = Trace("a")
        a.extend([0.0, 1.0], [0.0, 1.0])
        b = Trace("b")
        b.extend([2.0, 3.0], [0.0, 1.0])
        with pytest.raises(ConfigurationError):
            compare_traces(a, b)


class TestSpeedupTable:
    def make_result(self, name, cpu, final_time, steps=100):
        stats = SolverStats(solver_name=name, cpu_time_s=cpu, final_time=final_time)
        stats.n_accepted_steps = steps
        result = SimulationResult(stats=stats)
        result.metadata["integrator"] = "ab3"
        return result

    def test_speedup_function(self):
        assert speedup(100.0, 1.0) == pytest.approx(100.0)
        with pytest.raises(ConfigurationError):
            speedup(10.0, 0.0)

    def test_table_rows_and_speedups(self):
        table = SpeedupTable(title="Table II", reference_label="proposed")
        table.add(TimingEntry.from_result("proposed", self.make_result("fast", 1.0, 2.0)))
        table.add(TimingEntry.from_result("baseline", self.make_result("slow", 50.0, 1.0)))
        assert table.entry("baseline").cpu_seconds_per_simulated_second == pytest.approx(50.0)
        assert table.speedup_of("proposed", "baseline") == pytest.approx(100.0)
        assert table.speedups()["baseline"] == pytest.approx(100.0)
        formatted = table.format()
        assert "Table II" in formatted and "proposed" in formatted and "speed-up" in formatted

    def test_missing_entry(self):
        table = SpeedupTable(title="t")
        with pytest.raises(ConfigurationError):
            table.entry("nope")
        with pytest.raises(ConfigurationError):
            table.speedups()
