"""Topology-aware sweep tests: spec axes, BlockSpec swaps, engine reuse."""

import numpy as np
import pytest

from repro.analysis.engine import SweepEngine, _topology_key
from repro.analysis.sweep import (
    ParameterSweep,
    average_power_metric,
    format_sweep_value,
)
from repro.core.errors import ConfigurationError
from repro.core.spec import BlockSpec
from repro.harvester.scenarios import charging_scenario
from repro.harvester.topologies import generator_variants, piezoelectric_scenario

DUR = 0.03  # simulated seconds per candidate — keeps the suite fast


def _spec_sweep(grid, duration_s=DUR, **kwargs):
    return ParameterSweep(
        piezoelectric_scenario(duration_s=duration_s, excitation_frequency_hz=70.0),
        grid,
        metric=average_power_metric,
        metric_name="average_power_W",
        **kwargs,
    )


class TestSpecAxes:
    def test_excitation_axis(self):
        result = _spec_sweep({"excitation_frequency_hz": [60.0, 70.0]}).run()
        assert len(result.points) == 2
        assert all(np.isfinite(p.score) for p in result.points)
        # on-resonance beats off-resonance
        assert result.best().parameters["excitation_frequency_hz"] == 70.0

    def test_dotted_block_param_axis(self):
        result = _spec_sweep(
            {"generator.series_resistance_ohm": [4.7e3, 15e3]}
        ).run()
        assert len(result.points) == 2
        scores = [p.score for p in result.points]
        assert scores[0] != scores[1]

    def test_unknown_spec_axis_rejected(self):
        sweep = _spec_sweep({"flux_capacitance": [1.0]})
        with pytest.raises(ConfigurationError, match="flux_capacitance"):
            sweep.run()

    def test_dotted_axis_with_unknown_block_rejected(self):
        sweep = _spec_sweep({"rectifier.series_resistance_ohm": [1.0]})
        with pytest.raises(ConfigurationError, match="rectifier"):
            sweep.run()


class TestTopologyAxis:
    def test_generator_axis_sweeps_three_topologies(self):
        variants = generator_variants(70.0)
        sweep = _spec_sweep({"generator": list(variants.values())})
        result = sweep.run()
        assert len(result.points) == 3
        assert all(np.isfinite(p.score) and p.score > 0 for p in result.points)
        keys = [p.parameters["generator"].key for p in result.points]
        assert keys == [
            "electromagnetic_generator",
            "piezoelectric_generator",
            "electrostatic_generator",
        ]
        # the ranking table renders BlockSpec values by key
        assert "piezoelectric_generator" in result.format()

    def test_parallel_matches_serial(self):
        variants = generator_variants(70.0)
        sweep = _spec_sweep({"generator": list(variants.values())})
        serial = sweep.run()
        parallel = sweep.run(n_workers=2)
        assert [p.score for p in serial.points] == [p.score for p in parallel.points]
        assert serial.best().parameters["generator"].key == (
            parallel.best().parameters["generator"].key
        )

    def test_reuse_off_matches_reuse_on(self):
        variants = generator_variants(70.0)
        sweep = _spec_sweep(
            {"generator": [variants["electromagnetic"], variants["piezoelectric"]]}
        )
        with_reuse = SweepEngine(1, reuse_assembly=True).run(sweep)
        without = SweepEngine(1, reuse_assembly=False).run(sweep)
        assert [p.score for p in with_reuse.points] == [
            p.score for p in without.points
        ]

    def test_topology_key_distinguishes_specs(self):
        variants = generator_variants(70.0)
        sweep = _spec_sweep({"generator": list(variants.values())})
        keys = {
            _topology_key(sweep.candidate_scenario(c)) for c in sweep.candidates()
        }
        assert len(keys) == 3  # one assembly-cache entry per topology

    def test_legacy_scenario_topology_key_still_works(self):
        scenario = charging_scenario(duration_s=DUR)
        key = _topology_key(scenario)
        assert key[1] == scenario.config.multiplier_stages

    def test_checkpoint_resume_with_topology_axis(self, tmp_path):
        variants = generator_variants(70.0)
        grid = {"generator": [variants["electromagnetic"], variants["piezoelectric"]]}
        path = str(tmp_path / "topo.csv")
        first = _spec_sweep(grid).run(checkpoint_path=path)
        resumed = _spec_sweep(grid).run(checkpoint_path=path)
        assert resumed.engine_info.n_resumed == 2
        assert resumed.engine_info.n_evaluated == 0
        assert [p.score for p in first.points] == [p.score for p in resumed.points]


class TestAxisOrdering:
    def test_dotted_override_survives_topology_swap_in_any_grid_order(self):
        """BlockSpec swaps apply first, so dotted overrides are not discarded."""
        variants = generator_variants(70.0)
        sweep = _spec_sweep(
            {
                # dotted axis listed BEFORE the topology axis on purpose
                "generator.series_resistance_ohm": [1e3, 9e3],
                "generator": [variants["piezoelectric"]],
            }
        )
        scenarios = [sweep.candidate_scenario(c) for c in sweep.candidates()]
        resistances = [
            s.spec.block("generator").params["series_resistance_ohm"]
            for s in scenarios
        ]
        assert resistances == [1e3, 9e3]


class TestFormatting:
    def test_format_sweep_value(self):
        assert format_sweep_value(0.5) == "0.5"
        block = BlockSpec("piezoelectric_generator", "generator", {})
        assert format_sweep_value(block) == "piezoelectric_generator"
        assert format_sweep_value("text") == "text"

    def test_progress_formatter_handles_topology_axis_values(self):
        from repro.io.report import format_sweep_progress

        block = BlockSpec("piezoelectric_generator", "generator", {})
        line = format_sweep_progress(
            1, 3, 1.0e-6, {"generator": block, "excitation_amplitude_ms2": 0.59}
        )
        assert "generator=piezoelectric_generator" in line

    def test_engine_progress_callback_with_topology_axis(self):
        """End to end: the documented progress pipeline on a topology sweep."""
        from repro.io.report import format_sweep_progress

        variants = generator_variants(70.0)
        lines = []
        sweep = _spec_sweep(
            {"generator": [variants["electromagnetic"], variants["piezoelectric"]]}
        )
        sweep.run(
            progress=lambda done, total, best: lines.append(
                format_sweep_progress(done, total, best.score, best.parameters)
            )
        )
        assert len(lines) == 2
        assert "generator=" in lines[-1]
