"""Engine-level tests of the batched lane-parallel backend."""

from dataclasses import replace

import pytest

from repro.analysis.engine import SweepEngine
from repro.analysis.sweep import ParameterSweep, average_power_metric
from repro.core.errors import ConfigurationError
from repro.harvester.scenarios import (
    charging_scenario,
    scenario_1,
    scenario_solver_settings,
)


def make_sweep(duration_s=0.05, frequencies=(68.0, 70.0), amplitudes=(0.4, 0.59)):
    scenario = charging_scenario(duration_s=duration_s)
    return ParameterSweep(
        scenario,
        {
            "excitation_frequency_hz": list(frequencies),
            "excitation_amplitude_ms2": list(amplitudes),
        },
        metric=average_power_metric,
        metric_name="average_power_W",
    )


class TestBatchedBackendParity:
    def test_fixed_step_scores_identical_to_process_backend(self):
        sweep = make_sweep()
        settings = replace(
            scenario_solver_settings(sweep.scenario), fixed_step=1e-4
        )
        serial = SweepEngine(1).run(sweep, settings=settings)
        batched = SweepEngine(1, backend="batched").run(sweep, settings=settings)
        for ref, got in zip(serial.points, batched.points):
            assert ref.parameters == got.parameters
            assert got.score == ref.score  # byte-identical waveforms
        info = batched.engine_info
        assert info.backend == "batched"
        assert info.n_lane_blocks == 1
        assert info.n_batch_fallbacks == 0
        assert info.n_batched_candidates == 4  # runtime truth, not planning

    def test_adaptive_scores_within_documented_tolerance(self):
        sweep = make_sweep()
        serial = SweepEngine(1).run(sweep)
        batched = SweepEngine(1, backend="batched").run(sweep)
        for ref, got in zip(serial.points, batched.points):
            assert got.score == pytest.approx(ref.score, rel=0.10)
        assert serial.best().parameters == batched.best().parameters

    def test_lane_width_splits_blocks_without_changing_results(self):
        sweep = make_sweep()
        settings = replace(
            scenario_solver_settings(sweep.scenario), fixed_step=1e-4
        )
        whole = SweepEngine(1, backend="batched").run(sweep, settings=settings)
        split = SweepEngine(1, backend="batched", lane_width=2).run(
            sweep, settings=settings
        )
        assert split.engine_info.n_lane_blocks == 2
        for ref, got in zip(whole.points, split.points):
            assert got.score == ref.score

    def test_controller_candidates_fall_back_to_scalar_path(self):
        # scenario_1 runs the digital tuning controller: the batched
        # backend must route every candidate through the scalar solver and
        # reproduce the process backend exactly
        scenario = scenario_1(duration_s=0.05)
        sweep = ParameterSweep(
            scenario,
            {"excitation_frequency_hz": [70.0, 70.5]},
            metric=average_power_metric,
            metric_name="average_power_W",
        )
        serial = SweepEngine(1).run(sweep)
        batched = SweepEngine(1, backend="batched").run(sweep)
        for ref, got in zip(serial.points, batched.points):
            assert got.score == ref.score
        info = batched.engine_info
        assert info.n_lane_blocks == 0
        assert info.n_batch_fallbacks == 2
        assert info.n_batched_candidates == 0

    def test_unknown_backend_rejected(self):
        with pytest.raises(ConfigurationError, match="backend"):
            SweepEngine(1, backend="gpu")

    def test_batched_composes_with_worker_processes(self):
        sweep = make_sweep()
        settings = replace(
            scenario_solver_settings(sweep.scenario), fixed_step=1e-4
        )
        serial = SweepEngine(1, backend="batched").run(sweep, settings=settings)
        parallel = SweepEngine(2, backend="batched").run(sweep, settings=settings)
        assert parallel.engine_info.parallel
        assert parallel.engine_info.n_lane_blocks == 2  # one block per worker
        for ref, got in zip(serial.points, parallel.points):
            assert got.score == ref.score


class TestCheckpointGuard:
    def test_resume_with_same_grid_and_backend_is_accepted(self, tmp_path):
        path = tmp_path / "ckpt.csv"
        sweep = make_sweep()
        first = SweepEngine(1, backend="batched", checkpoint_path=str(path)).run(
            sweep
        )
        resumed = SweepEngine(1, backend="batched", checkpoint_path=str(path)).run(
            sweep
        )
        assert resumed.engine_info.n_resumed == 4
        assert resumed.engine_info.n_evaluated == 0
        for ref, got in zip(first.points, resumed.points):
            assert got.score == ref.score

    def test_resume_with_different_backend_raises(self, tmp_path):
        path = tmp_path / "ckpt.csv"
        sweep = make_sweep()
        SweepEngine(1, checkpoint_path=str(path)).run(sweep)
        with pytest.raises(ConfigurationError, match="different sweep"):
            SweepEngine(1, backend="batched", checkpoint_path=str(path)).run(sweep)

    def test_resume_with_changed_grid_values_raises(self, tmp_path):
        path = tmp_path / "ckpt.csv"
        SweepEngine(1, checkpoint_path=str(path)).run(make_sweep())
        reshaped = make_sweep(frequencies=(64.0, 70.0))
        with pytest.raises(ConfigurationError, match="different sweep"):
            SweepEngine(1, checkpoint_path=str(path)).run(reshaped)

    def test_resume_with_changed_base_config_raises(self, tmp_path):
        # same grid axes, different base scenario (duration): the config
        # hash must refuse to stitch the stale scores in
        path = tmp_path / "ckpt.csv"
        SweepEngine(1, checkpoint_path=str(path)).run(make_sweep(duration_s=0.05))
        with pytest.raises(ConfigurationError, match="different sweep"):
            SweepEngine(1, checkpoint_path=str(path)).run(
                make_sweep(duration_s=0.02)
            )
