"""Tests for the piecewise-linear lookup tables."""

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.errors import ConfigurationError, TableRangeError
from repro.core.pwl import CompanionTable, PWLTable, build_companion_table, build_table


class TestPWLTableConstruction:
    def test_requires_matching_lengths(self):
        with pytest.raises(ConfigurationError):
            PWLTable([0.0, 1.0, 2.0], [0.0, 1.0])

    def test_requires_two_breakpoints(self):
        with pytest.raises(ConfigurationError):
            PWLTable([0.0], [1.0])

    def test_requires_strictly_increasing_breakpoints(self):
        with pytest.raises(ConfigurationError):
            PWLTable([0.0, 1.0, 1.0], [0.0, 1.0, 2.0])
        with pytest.raises(ConfigurationError):
            PWLTable([0.0, 2.0, 1.0], [0.0, 1.0, 2.0])

    def test_rejects_two_dimensional_data(self):
        with pytest.raises(ConfigurationError):
            PWLTable(np.zeros((2, 2)), np.zeros((2, 2)))

    def test_detects_uniform_grid(self):
        assert PWLTable([0.0, 1.0, 2.0], [0.0, 1.0, 4.0]).is_uniform
        assert not PWLTable([0.0, 1.0, 3.0], [0.0, 1.0, 4.0]).is_uniform

    def test_len_and_domain(self):
        table = PWLTable([-1.0, 0.0, 2.0], [1.0, 0.0, 4.0])
        assert len(table) == 3
        assert table.domain == (-1.0, 2.0)


class TestPWLTableLookup:
    def test_exact_at_breakpoints(self):
        xs = [0.0, 0.5, 1.5, 4.0]
        ys = [1.0, -2.0, 3.0, 0.5]
        table = PWLTable(xs, ys)
        for x, y in zip(xs, ys):
            assert table(x) == pytest.approx(y)

    def test_midpoint_interpolation(self):
        table = PWLTable([0.0, 2.0], [0.0, 10.0])
        assert table(1.0) == pytest.approx(5.0)

    def test_slope(self):
        table = PWLTable([0.0, 1.0, 3.0], [0.0, 2.0, 2.0])
        assert table.slope(0.5) == pytest.approx(2.0)
        assert table.slope(2.0) == pytest.approx(0.0)

    def test_extrapolation_uses_edge_segment(self):
        table = PWLTable([0.0, 1.0], [0.0, 2.0])
        assert table(2.0) == pytest.approx(4.0)
        assert table(-1.0) == pytest.approx(-2.0)

    def test_range_error_when_extrapolation_disabled(self):
        table = PWLTable([0.0, 1.0], [0.0, 2.0], extrapolate=False)
        with pytest.raises(TableRangeError):
            table(1.5)
        with pytest.raises(TableRangeError):
            table.slope(-0.5)

    def test_evaluate_many(self):
        table = PWLTable([0.0, 1.0, 2.0], [0.0, 1.0, 4.0])
        values = table.evaluate_many([0.0, 0.5, 1.5])
        assert values == pytest.approx([0.0, 0.5, 2.5])

    @given(
        st.lists(
            st.floats(min_value=-10.0, max_value=10.0, allow_nan=False),
            min_size=3,
            max_size=12,
            unique=True,
        ),
        st.floats(min_value=0.0, max_value=1.0),
    )
    @settings(max_examples=60, deadline=None)
    def test_interpolant_bounded_by_neighbouring_values(self, xs, fraction):
        """Within a segment the interpolant lies between the segment's values."""
        xs = sorted(xs)
        ys = [math.sin(x) for x in xs]
        table = PWLTable(xs, ys)
        # pick a query inside an interior segment
        x_query = xs[0] + fraction * (xs[-1] - xs[0])
        value = table(x_query)
        idx = table._segment_index(x_query)
        lo = min(ys[idx], ys[idx + 1])
        hi = max(ys[idx], ys[idx + 1])
        assert lo - 1e-12 <= value <= hi + 1e-12


class TestBuildTable:
    def test_build_table_samples_function(self):
        table = build_table(lambda x: x * x, 0.0, 2.0, n_points=101)
        assert table(1.0) == pytest.approx(1.0, abs=1e-3)
        assert table(2.0) == pytest.approx(4.0)

    def test_build_table_validates_domain(self):
        with pytest.raises(ConfigurationError):
            build_table(lambda x: x, 1.0, 0.0)
        with pytest.raises(ConfigurationError):
            build_table(lambda x: x, 0.0, 1.0, n_points=1)


class TestCompanionTable:
    def test_requires_identical_breakpoints(self):
        g = PWLTable([0.0, 1.0], [1.0, 1.0])
        j = PWLTable([0.0, 2.0], [0.0, 0.0])
        with pytest.raises(ConfigurationError):
            CompanionTable(g, j)

    def test_branch_current_reconstruction(self):
        # companion built from i = 2 v + 1 exactly reproduces the branch law
        table = build_companion_table(lambda v: 2.0 * v + 1.0, lambda v: 2.0, -1.0, 1.0, 16)
        for v in np.linspace(-1.0, 1.0, 9):
            assert table.branch_current(float(v)) == pytest.approx(2.0 * v + 1.0)

    def test_secant_mode_matches_function_at_breakpoints(self):
        table = build_companion_table(lambda v: v**3, None, -2.0, 2.0, 33)
        for v in np.linspace(-2.0, 2.0, 33):
            assert table.branch_current(float(v)) == pytest.approx(v**3, abs=5e-2)

    def test_evaluate_returns_pair(self):
        table = build_companion_table(lambda v: 3.0 * v, lambda v: 3.0, 0.0, 1.0, 8)
        g, j = table.evaluate(0.5)
        assert g == pytest.approx(3.0)
        assert j == pytest.approx(0.0, abs=1e-12)

    def test_domain_validation(self):
        with pytest.raises(ConfigurationError):
            build_companion_table(lambda v: v, None, 1.0, 0.0)
