"""Tests for the explicit and implicit integration formulas."""

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.integrators import (
    AdamsBashforth,
    BackwardEuler,
    ForwardEuler,
    RungeKutta2,
    RungeKutta4,
    Trapezoidal,
    adams_bashforth_coefficients,
    make_integrator,
)
from repro.core.integrators.adams_bashforth import _variable_step_weights


def integrate(integrator, func, x0, t_end, n_steps):
    """March a scalar/vector ODE with a constant step."""
    state = integrator.new_state()
    x = np.atleast_1d(np.asarray(x0, dtype=float))
    t = 0.0
    h = t_end / n_steps
    for _ in range(n_steps):
        x = integrator.step(func, t, x, h, state)
        t += h
    return x


class TestForwardEuler:
    def test_exact_for_constant_derivative(self):
        fe = ForwardEuler()
        x = integrate(fe, lambda t, x: np.array([2.0]), [0.0], 1.0, 10)
        assert x[0] == pytest.approx(2.0)

    def test_rejects_non_positive_step(self):
        with pytest.raises(ValueError):
            ForwardEuler().step(lambda t, x: x, 0.0, np.array([1.0]), 0.0)

    def test_first_order_convergence(self):
        fe = ForwardEuler()
        func = lambda t, x: -x
        errors = []
        for n in (40, 80):
            x = integrate(fe, func, [1.0], 1.0, n)
            errors.append(abs(x[0] - math.exp(-1.0)))
        assert errors[0] / errors[1] == pytest.approx(2.0, rel=0.2)


class TestAdamsBashforth:
    def test_classical_coefficients(self):
        assert adams_bashforth_coefficients(1) == (1.0,)
        assert adams_bashforth_coefficients(2) == (1.5, -0.5)
        assert adams_bashforth_coefficients(3)[0] == pytest.approx(23.0 / 12.0)
        with pytest.raises(ValueError):
            adams_bashforth_coefficients(6)

    def test_invalid_order(self):
        with pytest.raises(ValueError):
            AdamsBashforth(order=0)
        with pytest.raises(ValueError):
            AdamsBashforth(order=9)

    def test_variable_step_weights_reduce_to_classical_ab2(self):
        h = 0.01
        weights = _variable_step_weights([-h, 0.0], 0.0, h)
        # oldest sample first: classical AB2 is (-1/2, 3/2) * h
        assert weights[0] == pytest.approx(-0.5 * h)
        assert weights[1] == pytest.approx(1.5 * h)

    def test_variable_step_weights_reduce_to_classical_ab3(self):
        h = 0.02
        weights = _variable_step_weights([-2 * h, -h, 0.0], 0.0, h)
        assert weights[0] == pytest.approx(5.0 / 12.0 * h)
        assert weights[1] == pytest.approx(-16.0 / 12.0 * h)
        assert weights[2] == pytest.approx(23.0 / 12.0 * h)

    def test_first_step_uses_runge_kutta_starter(self):
        # for dx/dt = t the first AB step would be 0 (Forward Euler), while
        # the RK4 starter integrates it exactly to h^2/2
        ab = AdamsBashforth(order=3)
        state = ab.new_state()
        x = ab.step(lambda t, x: np.array([t]), 0.0, np.array([0.0]), 0.5, state)
        assert x[0] == pytest.approx(0.125)

    @pytest.mark.parametrize("order,expected_rate", [(2, 4.0), (3, 8.0)])
    def test_convergence_order(self, order, expected_rate):
        func = lambda t, x: -x
        errors = []
        for n in (50, 100):
            ab = AdamsBashforth(order=order)
            x = integrate(ab, func, [1.0], 1.0, n)
            errors.append(abs(x[0] - math.exp(-1.0)))
        assert errors[0] / errors[1] == pytest.approx(expected_rate, rel=0.35)

    def test_discontinuity_clears_history(self):
        ab = AdamsBashforth(order=3)
        state = ab.new_state()
        x = np.array([1.0])
        for i in range(3):
            x = ab.step(lambda t, x: -x, i * 0.1, x, 0.1, state)
        assert len(state) == 3
        ab.notify_discontinuity(state)
        assert len(state) == 0

    def test_without_state_behaves_as_forward_euler(self):
        ab = AdamsBashforth(order=3)
        x = ab.step(lambda t, x: np.array([2.0]), 0.0, np.array([0.0]), 0.25, None)
        assert x[0] == pytest.approx(0.5)

    def test_ab3_has_imaginary_axis_coverage(self):
        assert AdamsBashforth(order=3).stability_imag_extent > 0.0
        assert AdamsBashforth(order=2).stability_imag_extent == 0.0

    @given(
        st.integers(min_value=1, max_value=4),
        st.floats(min_value=0.01, max_value=0.2),
    )
    @settings(max_examples=40, deadline=None)
    def test_exact_for_polynomial_derivatives(self, order, h):
        """AB of order p integrates dx/dt = t^(p-1) exactly.

        The RK4 starter is also exact for polynomial derivatives up to
        degree 3, so the whole march must reproduce the analytic integral to
        round-off for every order up to 4.
        """
        ab = AdamsBashforth(order=order)
        state = ab.new_state()
        power = order - 1
        func = lambda t, x: np.array([t**power])
        x = np.array([0.0])
        t = 0.0
        n_steps = order + 4
        for _ in range(n_steps):
            x = ab.step(func, t, x, h, state)
            t += h
        exact = t ** (power + 1) / (power + 1)
        assert abs(x[0] - exact) <= 1e-9 * max(1.0, abs(exact))


class TestRungeKutta:
    def test_rk2_convergence(self):
        func = lambda t, x: -x
        errors = []
        for n in (20, 40):
            x = integrate(RungeKutta2(), func, [1.0], 1.0, n)
            errors.append(abs(x[0] - math.exp(-1.0)))
        assert errors[0] / errors[1] == pytest.approx(4.0, rel=0.25)

    def test_rk4_high_accuracy(self):
        x = integrate(RungeKutta4(), lambda t, x: -x, [1.0], 1.0, 20)
        assert x[0] == pytest.approx(math.exp(-1.0), abs=1e-7)

    def test_rk4_oscillator(self):
        # harmonic oscillator x'' = -x integrated as a first-order system
        omega = 2.0 * math.pi

        def func(t, x):
            return np.array([x[1], -(omega**2) * x[0]])

        state = np.array([1.0, 0.0])
        rk = RungeKutta4()
        h = 1.0 / 200.0
        t = 0.0
        for _ in range(200):
            state = rk.step(func, t, state, h)
            t += h
        assert state[0] == pytest.approx(1.0, abs=1e-4)

    def test_step_rejects_non_positive(self):
        with pytest.raises(ValueError):
            RungeKutta4().step(lambda t, x: x, 0.0, np.array([1.0]), -0.1)


class TestImplicitFormulas:
    def test_backward_euler_residual(self):
        x_next = np.array([2.0])
        f_next = np.array([3.0])
        x_curr = np.array([1.0])
        f_curr = np.array([10.0])
        residual = BackwardEuler.residual(x_next, f_next, x_curr, f_curr, 0.5)
        assert residual[0] == pytest.approx(2.0 - 1.0 - 0.5 * 3.0)

    def test_trapezoidal_residual_mixes_both_derivatives(self):
        residual = Trapezoidal.residual(
            np.array([2.0]), np.array([4.0]), np.array([1.0]), np.array([2.0]), 0.5
        )
        assert residual[0] == pytest.approx(2.0 - 1.0 - 0.5 * 0.5 * (4.0 + 2.0))

    def test_jacobian_shape_and_value(self):
        df = np.array([[-2.0]])
        jac = BackwardEuler.jacobian(df, 0.1)
        assert jac[0, 0] == pytest.approx(1.2)
        assert Trapezoidal.jacobian(df, 0.1)[0, 0] == pytest.approx(1.1)

    def test_orders(self):
        assert BackwardEuler.order == 1
        assert Trapezoidal.order == 2


class TestFactory:
    @pytest.mark.parametrize(
        "name,cls",
        [
            ("forward_euler", ForwardEuler),
            ("euler", ForwardEuler),
            ("adams_bashforth", AdamsBashforth),
            ("ab", AdamsBashforth),
            ("rk2", RungeKutta2),
            ("rk4", RungeKutta4),
            ("Adams-Bashforth", AdamsBashforth),
        ],
    )
    def test_known_names(self, name, cls):
        assert isinstance(make_integrator(name), cls)

    def test_order_keyword(self):
        assert make_integrator("ab", order=4).order == 4

    def test_unknown_name(self):
        with pytest.raises(ValueError):
            make_integrator("simpson")
