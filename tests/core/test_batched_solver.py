"""Batched lock-step solver: byte-identity, retirement and guard rails."""

from dataclasses import replace

import numpy as np
import pytest

from repro.core.batch import BatchedSolver
from repro.core.errors import (
    ConfigurationError,
    SingularSystemError,
    StabilityError,
)
from repro.harvester.scenarios import (
    charging_scenario,
    prepare_assembly,
    run_proposed,
    scenario_solver_settings,
)
from repro.harvester.topologies import piezoelectric_scenario


def _lane_scenarios(duration_s=0.02):
    return [
        charging_scenario(duration_s=duration_s, frequency_hz=f)
        for f in (66.0, 70.0, 75.0)
    ]


def _batched_run(scenarios, settings_list):
    structure = prepare_assembly(scenarios[0])
    harvesters = [
        s.build_harvester(assembly_structure=structure) for s in scenarios
    ]
    solver = BatchedSolver(
        [h.assembler for h in harvesters], settings=settings_list
    )
    for i, harvester in enumerate(harvesters):
        harvester._wire(solver.lane_wiring(i))
    return solver.run([s.duration_s for s in scenarios])


def _assert_traces_identical(reference, result, context=""):
    assert sorted(reference.traces) == sorted(result.traces)
    for name in reference.traces:
        ref, got = reference[name], result[name]
        assert np.array_equal(ref.times, got.times), f"{context}{name}: times differ"
        assert np.array_equal(ref.values, got.values), (
            f"{context}{name}: values differ"
        )


class TestFixedStepByteIdentity:
    def test_paper_topology_lanes_match_serial_runs_exactly(self):
        scenarios = _lane_scenarios()
        settings_list = [
            replace(scenario_solver_settings(s), fixed_step=1e-4)
            for s in scenarios
        ]
        serial = [
            run_proposed(s, settings=st)
            for s, st in zip(scenarios, settings_list)
        ]
        batch = _batched_run(scenarios, settings_list)
        assert not batch.failures
        for i, (ref, got) in enumerate(zip(serial, batch.results)):
            _assert_traces_identical(ref, got, context=f"lane {i} ")
            assert got.metadata["batched"] is True
            assert got.metadata["lane_index"] == i

    def test_hold_interval_lanes_match_serial_runs_exactly(self):
        # relinearise_interval > 1 keeps a shared step-count schedule, so
        # byte-identity must survive the amortised profile too
        scenarios = _lane_scenarios()
        settings_list = [
            replace(
                scenario_solver_settings(s),
                fixed_step=1e-4,
                relinearise_interval=4,
            )
            for s in scenarios
        ]
        serial = [
            run_proposed(s, settings=st)
            for s, st in zip(scenarios, settings_list)
        ]
        batch = _batched_run(scenarios, settings_list)
        assert not batch.failures
        for ref, got in zip(serial, batch.results):
            _assert_traces_identical(ref, got)

    def test_spec_backed_topology_matches_serial_runs_exactly(self):
        scenarios = [
            piezoelectric_scenario(duration_s=0.01, excitation_frequency_hz=f)
            for f in (60.0, 70.0)
        ]
        settings_list = [
            replace(s.solver_settings(), fixed_step=5e-5) for s in scenarios
        ]
        serial = [
            run_proposed(s, settings=st)
            for s, st in zip(scenarios, settings_list)
        ]
        batch = _batched_run(scenarios, settings_list)
        assert not batch.failures
        for ref, got in zip(serial, batch.results):
            _assert_traces_identical(ref, got)


class TestAdaptiveSharedStep:
    def test_scores_close_and_stats_populated(self):
        scenarios = _lane_scenarios(duration_s=0.05)
        settings_list = [scenario_solver_settings(s) for s in scenarios]
        serial = [
            run_proposed(s, settings=st)
            for s, st in zip(scenarios, settings_list)
        ]
        batch = _batched_run(scenarios, settings_list)
        assert not batch.failures
        for ref, got in zip(serial, batch.results):
            ref_v = ref["storage_voltage"].final()
            got_v = got["storage_voltage"].final()
            assert got_v == pytest.approx(ref_v, rel=0.1)
            assert got.stats.n_accepted_steps > 10
            assert got.stats.final_time == pytest.approx(0.05)

    def test_solver_is_reusable_after_lane_retirement(self):
        # retiring lanes mid-march must not corrupt the solver object:
        # a second run() on the same instance has to see all lanes again
        scenarios = [
            charging_scenario(duration_s=d, frequency_hz=70.0)
            for d in (0.01, 0.02)
        ]
        structure = prepare_assembly(scenarios[0])
        harvesters = [
            s.build_harvester(assembly_structure=structure) for s in scenarios
        ]
        solver = BatchedSolver(
            [h.assembler for h in harvesters],
            settings=[scenario_solver_settings(s) for s in scenarios],
        )
        first = solver.run([0.01, 0.02])
        second = solver.run([0.01, 0.02])
        assert not first.failures and not second.failures
        for a, b in zip(first.results, second.results):
            assert a.stats.n_accepted_steps == b.stats.n_accepted_steps

    def test_stats_counters_match_scalar_run(self):
        # the initial consistency solve counts only as a linear solve,
        # exactly like the scalar solver's bookkeeping
        scenario = charging_scenario(duration_s=0.01, frequency_hz=70.0)
        settings = replace(scenario_solver_settings(scenario), fixed_step=1e-4)
        scalar = run_proposed(scenario, settings=settings)
        batch = _batched_run([scenario], [settings])
        stats = batch.results[0].stats
        assert stats.n_jacobian_evaluations == scalar.stats.n_jacobian_evaluations
        assert stats.n_linear_solves == scalar.stats.n_linear_solves
        assert stats.n_accepted_steps == scalar.stats.n_accepted_steps

    def test_per_lane_end_times_retire_lanes_in_order(self):
        scenarios = [
            charging_scenario(duration_s=d, frequency_hz=70.0)
            for d in (0.01, 0.03)
        ]
        structure = prepare_assembly(scenarios[0])
        harvesters = [
            s.build_harvester(assembly_structure=structure) for s in scenarios
        ]
        solver = BatchedSolver(
            [h.assembler for h in harvesters],
            settings=[scenario_solver_settings(s) for s in scenarios],
        )
        batch = solver.run([0.01, 0.03])
        assert not batch.failures
        assert batch.results[0].stats.final_time == pytest.approx(0.01)
        assert batch.results[1].stats.final_time == pytest.approx(0.03)
        assert (
            batch.results[1].stats.n_accepted_steps
            > batch.results[0].stats.n_accepted_steps
        )


class TestLaneRetirement:
    def test_diverging_lane_is_retired_and_the_rest_survive(self):
        scenarios = _lane_scenarios()
        settings_list = [
            replace(scenario_solver_settings(s), fixed_step=1e-4)
            for s in scenarios
        ]
        # an absurdly tight divergence limit trips the guard on lane 1 only
        settings_list[1] = replace(settings_list[1], divergence_limit=1e-9)
        serial = [
            run_proposed(s, settings=st)
            for s, st in (
                (scenarios[0], settings_list[0]),
                (scenarios[2], settings_list[2]),
            )
        ]
        batch = _batched_run(scenarios, settings_list)
        assert set(batch.failures) == {1}
        assert isinstance(batch.failures[1], StabilityError)
        assert batch.results[1] is None
        _assert_traces_identical(serial[0], batch.results[0])
        _assert_traces_identical(serial[1], batch.results[2])

    def test_all_lanes_diverging_returns_only_failures(self):
        scenarios = _lane_scenarios()
        settings_list = [
            replace(
                scenario_solver_settings(s),
                fixed_step=1e-4,
                divergence_limit=1e-9,
            )
            for s in scenarios
        ]
        batch = _batched_run(scenarios, settings_list)
        assert set(batch.failures) == {0, 1, 2}
        assert all(result is None for result in batch.results)


class TestGuardRails:
    def test_mixed_fixed_step_is_rejected(self):
        scenarios = _lane_scenarios()
        settings_list = [scenario_solver_settings(s) for s in scenarios]
        settings_list[0] = replace(settings_list[0], fixed_step=1e-4)
        with pytest.raises(ConfigurationError, match="fixed_step"):
            _batched_run(scenarios, settings_list)

    def test_mixed_relinearise_interval_is_rejected(self):
        scenarios = _lane_scenarios()
        settings_list = [scenario_solver_settings(s) for s in scenarios]
        settings_list[0] = replace(settings_list[0], relinearise_interval=4)
        with pytest.raises(ConfigurationError, match="relinearise_interval"):
            _batched_run(scenarios, settings_list)

    def test_monitor_lle_is_rejected(self):
        scenarios = _lane_scenarios()
        settings_list = [
            replace(scenario_solver_settings(s), monitor_lle=True)
            for s in scenarios
        ]
        with pytest.raises(ConfigurationError, match="monitor_lle"):
            _batched_run(scenarios, settings_list)

    def test_fixed_step_requires_shared_t_end(self):
        scenarios = _lane_scenarios()
        settings_list = [
            replace(scenario_solver_settings(s), fixed_step=1e-4)
            for s in scenarios
        ]
        structure = prepare_assembly(scenarios[0])
        harvesters = [
            s.build_harvester(assembly_structure=structure) for s in scenarios
        ]
        solver = BatchedSolver(
            [h.assembler for h in harvesters], settings=settings_list
        )
        with pytest.raises(ConfigurationError, match="shared t_end"):
            solver.run([0.01, 0.02, 0.03])

    def test_mismatched_topologies_are_rejected(self):
        charging = charging_scenario(duration_s=0.01)
        piezo = piezoelectric_scenario(duration_s=0.01)
        with pytest.raises(ConfigurationError, match="topology"):
            BatchedSolver(
                [
                    charging.build_harvester().assembler,
                    piezo.build_harvester().assembler,
                ]
            )

    def test_singular_lane_is_blamed_not_the_batch(self):
        # voltage-pinning load against a zero-series-resistance source is
        # the documented singular wiring; build it via a degenerate
        # supercapacitor lane whose Jyy row vanishes is hard to fabricate
        # from stock blocks, so exercise the error type directly instead
        from repro.core.block import LinearBlock
        from repro.core.elimination import BatchedAssembler, SystemAssembler
        from repro.core.netlist import Netlist

        def make(d_value):
            source = LinearBlock(
                "src",
                a=np.array([[-1.0]]),
                b=np.array([[1.0]]),
                state_names=("s",),
                terminal_names=("p",),
                c=np.array([[1.0]]),
                d=np.array([[d_value]]),
            )
            sink = LinearBlock(
                "sink",
                a=np.array([[-2.0]]),
                b=np.array([[0.5]]),
                state_names=("w",),
                terminal_names=("p",),
            )
            netlist = Netlist()
            netlist.add_block(source)
            netlist.add_block(sink)
            netlist.connect(source.terminal("p"), sink.terminal("p"))
            return SystemAssembler(netlist)

        healthy = make(1.0)
        singular = make(0.0)  # Jyy == [[0]]: no equation pins the net
        batched = BatchedAssembler([healthy, singular])
        x = np.zeros((2, 2))
        y = np.zeros((2, 1))
        lin = batched.assemble(0.0, x, y)
        with pytest.raises(SingularSystemError) as excinfo:
            batched.eliminate(lin, x)
        assert excinfo.value.lane_indices == (1,)
