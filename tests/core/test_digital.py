"""Tests for the discrete-event digital kernel and the analogue interface."""

import pytest

from repro.core.digital import AnalogueInterface, DigitalEventKernel, DigitalProcess
from repro.core.errors import ConfigurationError


class OneShot(DigitalProcess):
    """Runs once, records its activation time, optionally writes a control."""

    def __init__(self, name, start_time=0.0, write_control=None):
        super().__init__(name, start_time)
        self.activations = []
        self.write_control = write_control

    def execute(self, t, analogue):
        self.activations.append(t)
        if self.write_control is not None:
            analogue.write(self.write_control, 1.0)
        return None


class Periodic(DigitalProcess):
    """Re-schedules itself with a fixed period a limited number of times."""

    def __init__(self, name, period, max_runs=3):
        super().__init__(name, start_time=0.0)
        self.period = period
        self.max_runs = max_runs
        self.activations = []

    def execute(self, t, analogue):
        self.activations.append(t)
        if len(self.activations) >= self.max_runs:
            return None
        return self.period


class TestAnalogueInterface:
    def test_probe_registration_and_read(self):
        interface = AnalogueInterface()
        interface.register_probe("v", lambda: 3.3)
        assert interface.read("v") == pytest.approx(3.3)
        assert interface.probe_names() == ["v"]

    def test_duplicate_probe_rejected(self):
        interface = AnalogueInterface()
        interface.register_probe("v", lambda: 0.0)
        with pytest.raises(ConfigurationError):
            interface.register_probe("v", lambda: 1.0)

    def test_unknown_probe_and_control(self):
        interface = AnalogueInterface()
        with pytest.raises(ConfigurationError):
            interface.read("missing")
        with pytest.raises(ConfigurationError):
            interface.write("missing", 1.0)

    def test_control_write_sets_dirty_flag(self):
        interface = AnalogueInterface()
        received = []
        interface.register_control("r", received.append)
        assert not interface.consume_dirty_flag()
        interface.write("r", 42.0)
        assert received == [42.0]
        assert interface.consume_dirty_flag()
        # flag cleared after consumption
        assert not interface.consume_dirty_flag()

    def test_control_names(self):
        interface = AnalogueInterface()
        interface.register_control("b", lambda v: None)
        interface.register_control("a", lambda v: None)
        assert interface.control_names() == ["a", "b"]


class TestDigitalEventKernel:
    def test_schedule_and_next_event_time(self):
        kernel = DigitalEventKernel()
        process = OneShot("p", start_time=2.0)
        kernel.add_process(process)
        assert kernel.next_event_time() == pytest.approx(2.0)
        assert kernel.has_pending()

    def test_negative_time_rejected(self):
        kernel = DigitalEventKernel()
        with pytest.raises(ConfigurationError):
            kernel.schedule(OneShot("p"), -1.0)

    def test_run_due_executes_only_due_events(self):
        kernel = DigitalEventKernel()
        early = OneShot("early", start_time=0.0)
        late = OneShot("late", start_time=5.0)
        kernel.add_process(early)
        kernel.add_process(late)
        interface = AnalogueInterface()
        kernel.run_due(1.0, interface)
        assert early.activations == [0.0]
        assert late.activations == []
        assert kernel.next_event_time() == pytest.approx(5.0)

    def test_periodic_rescheduling(self):
        kernel = DigitalEventKernel()
        process = Periodic("tick", period=1.0, max_runs=3)
        kernel.add_process(process)
        interface = AnalogueInterface()
        for t in (0.0, 1.0, 2.0, 3.0):
            kernel.run_due(t, interface)
        assert process.activations == [0.0, 1.0, 2.0]
        assert not kernel.has_pending()
        assert kernel.n_activations == 3

    def test_model_changed_flag(self):
        kernel = DigitalEventKernel()
        interface = AnalogueInterface()
        interface.register_control("load", lambda v: None)
        writer = OneShot("writer", start_time=0.0, write_control="load")
        silent = OneShot("silent", start_time=0.0)
        kernel.add_process(silent)
        assert kernel.run_due(0.0, interface) is False
        kernel.add_process(writer)
        assert kernel.run_due(0.0, interface) is True

    def test_non_positive_delay_rejected(self):
        class BadProcess(DigitalProcess):
            def execute(self, t, analogue):
                return 0.0

        kernel = DigitalEventKernel()
        kernel.add_process(BadProcess("bad"))
        with pytest.raises(ConfigurationError):
            kernel.run_due(0.0, AnalogueInterface())

    def test_empty_process_name_rejected(self):
        with pytest.raises(ConfigurationError):
            OneShot("")

    def test_events_run_in_time_order(self):
        order = []

        class Recorder(DigitalProcess):
            def execute(self, t, analogue):
                order.append(self.name)
                return None

        kernel = DigitalEventKernel()
        kernel.schedule(Recorder("second"), 2.0)
        kernel.schedule(Recorder("first"), 1.0)
        kernel.run_due(3.0, AnalogueInterface())
        assert order == ["first", "second"]
