"""Compiled lane core: backend resolution, byte-identity, guard overflow."""

from dataclasses import replace

import numpy as np
import pytest

from repro.core import kernels
from repro.core.batch import BatchedSolver
from repro.core.errors import ConfigurationError
from repro.core.kernels import (
    available_backends,
    batched_state_norms,
    resolve_compiled,
)
from repro.harvester.scenarios import (
    charging_scenario,
    prepare_assembly,
    scenario_1,
    scenario_2,
    scenario_solver_settings,
)
from repro.harvester.topologies import (
    electrostatic_scenario,
    piezoelectric_scenario,
)

# one lane set per SCENARIO_FACTORIES entry (same topology per set, a
# varied parameter across lanes so the stacked march is not degenerate)
LANE_SETS = {
    "scenario_1": lambda: [
        scenario_1(duration_s=0.02, shift_time_s=t) for t in (0.005, 0.01)
    ],
    "scenario_2": lambda: [
        scenario_2(duration_s=0.02, shift_time_s=t) for t in (0.005, 0.01)
    ],
    "charging": lambda: [
        charging_scenario(duration_s=0.02, frequency_hz=f)
        for f in (66.0, 70.0, 75.0)
    ],
    "piezoelectric_charging": lambda: [
        piezoelectric_scenario(duration_s=0.01, excitation_frequency_hz=f)
        for f in (60.0, 70.0)
    ],
    "electrostatic_charging": lambda: [
        electrostatic_scenario(duration_s=0.01, excitation_frequency_hz=f)
        for f in (50.0, 70.0)
    ],
}


def _batched_run(scenarios, settings_list, compiled="off"):
    structure = prepare_assembly(scenarios[0])
    harvesters = [
        s.build_harvester(assembly_structure=structure) for s in scenarios
    ]
    solver = BatchedSolver(
        [h.assembler for h in harvesters],
        settings=settings_list,
        compiled=compiled,
    )
    for i, harvester in enumerate(harvesters):
        harvester._wire(solver.lane_wiring(i))
    return solver.run([s.duration_s for s in scenarios])


def _assert_batches_identical(reference, result):
    assert set(reference.failures) == set(result.failures)
    for i, (ref, got) in enumerate(zip(reference.results, result.results)):
        assert (ref is None) == (got is None)
        if ref is None:
            continue
        assert sorted(ref.traces) == sorted(got.traces)
        for name in ref.traces:
            assert np.array_equal(ref[name].times, got[name].times), (
                f"lane {i} {name}: times differ"
            )
            assert np.array_equal(ref[name].values, got[name].values), (
                f"lane {i} {name}: values differ"
            )
        for key in (
            "n_steps",
            "n_accepted_steps",
            "n_function_evaluations",
            "n_jacobian_evaluations",
            "n_linear_solves",
            "min_step",
            "max_step",
            "final_time",
        ):
            assert getattr(ref.stats, key) == getattr(got.stats, key), (
                f"lane {i} stats.{key} differs"
            )


def _fixed_settings(scenarios, fixed_step, **overrides):
    return [
        replace(
            scenario_solver_settings(s)
            if hasattr(s, "config")
            else s.solver_settings(),
            fixed_step=fixed_step,
            **overrides,
        )
        for s in scenarios
    ]


def _settings_for(scenario):
    if hasattr(scenario, "config"):
        return scenario_solver_settings(scenario)
    return scenario.solver_settings()


@pytest.mark.parametrize("factory", sorted(LANE_SETS))
@pytest.mark.parametrize("backend", available_backends())
class TestFixedStepByteIdentity:
    def test_backend_matches_interpreted_exactly(self, factory, backend):
        scenarios = LANE_SETS[factory]()
        step = 1e-4 if hasattr(scenarios[0], "config") else 5e-5
        settings_list = [
            replace(_settings_for(s), fixed_step=step) for s in scenarios
        ]
        reference = _batched_run(scenarios, settings_list, compiled="off")
        result = _batched_run(scenarios, settings_list, compiled=backend)
        assert not reference.failures
        for got in result.results:
            assert got.metadata["compiled"] == backend
        _assert_batches_identical(reference, result)

    def test_hold_interval_matches_interpreted_exactly(self, factory, backend):
        # the amortised profile is where the burst kernel actually runs
        # long windows; identity must survive it
        scenarios = LANE_SETS[factory]()
        step = 1e-4 if hasattr(scenarios[0], "config") else 5e-5
        settings_list = [
            replace(_settings_for(s), fixed_step=step, relinearise_interval=8)
            for s in scenarios
        ]
        reference = _batched_run(scenarios, settings_list, compiled="off")
        result = _batched_run(scenarios, settings_list, compiled=backend)
        assert not reference.failures
        _assert_batches_identical(reference, result)


class TestAdaptiveIdentity:
    def test_numpy_backend_matches_interpreted_exactly(self):
        # the numpy kernel replays the interpreted arithmetic expression
        # for expression, so even adaptive shared-step runs stay bitwise
        scenarios = LANE_SETS["charging"]()
        settings_list = [_settings_for(s) for s in scenarios]
        reference = _batched_run(scenarios, settings_list, compiled="off")
        result = _batched_run(scenarios, settings_list, compiled="numpy")
        assert not reference.failures
        _assert_batches_identical(reference, result)

    def test_hold_profile_adaptive_matches_interpreted_exactly(self):
        scenarios = LANE_SETS["charging"]()
        settings_list = [
            replace(_settings_for(s), relinearise_interval=16)
            for s in scenarios
        ]
        reference = _batched_run(scenarios, settings_list, compiled="off")
        result = _batched_run(scenarios, settings_list, compiled="numpy")
        assert not reference.failures
        _assert_batches_identical(reference, result)


class TestLaneRetirement:
    def test_diverging_lane_is_retired_under_the_compiled_path(self):
        scenarios = LANE_SETS["charging"]()
        settings_list = _fixed_settings(scenarios, 1e-4)
        settings_list[1] = replace(settings_list[1], divergence_limit=1e-9)
        reference = _batched_run(scenarios, settings_list, compiled="off")
        result = _batched_run(scenarios, settings_list, compiled="numpy")
        assert set(result.failures) == {1}
        assert result.results[1] is None
        _assert_batches_identical(reference, result)


class TestBackendResolution:
    def test_off_resolves_to_no_backend(self):
        assert resolve_compiled("off") is None

    def test_numpy_is_always_available(self):
        assert "numpy" in available_backends()
        assert resolve_compiled("numpy") == "numpy"

    def test_unknown_mode_is_rejected(self):
        with pytest.raises(ConfigurationError, match="unknown compiled mode"):
            resolve_compiled("cuda")

    def test_solver_rejects_unknown_mode(self):
        scenarios = LANE_SETS["charging"]()[:1]
        structure = prepare_assembly(scenarios[0])
        harvester = scenarios[0].build_harvester(assembly_structure=structure)
        with pytest.raises(ConfigurationError, match="unknown compiled mode"):
            BatchedSolver([harvester.assembler], compiled="cuda")


class TestNoNumbaEnvironment:
    """Behaviour pinned for environments without the compiled extras."""

    @pytest.fixture(autouse=True)
    def no_native_backends(self, monkeypatch):
        monkeypatch.setattr(
            kernels, "_PROBE_CACHE", {"numba": False, "jax": False}
        )
        yield

    def test_auto_degrades_to_the_numpy_kernel(self):
        assert available_backends() == ("numpy",)
        assert resolve_compiled("auto") == "numpy"

    def test_auto_still_runs_and_matches_interpreted(self):
        scenarios = LANE_SETS["charging"]()
        settings_list = _fixed_settings(scenarios, 1e-4)
        reference = _batched_run(scenarios, settings_list, compiled="off")
        result = _batched_run(scenarios, settings_list, compiled="auto")
        for got in result.results:
            assert got.metadata["compiled"] == "numpy"
        _assert_batches_identical(reference, result)

    @pytest.mark.parametrize("mode", ("numba", "jax"))
    def test_explicit_native_backend_raises_a_clear_error(self, mode):
        with pytest.raises(ConfigurationError) as excinfo:
            resolve_compiled(mode)
        message = str(excinfo.value)
        assert mode in message
        assert "repro[compiled]" in message

    def test_run_options_reject_missing_backend_eagerly(self):
        from repro.api import RunOptions

        with pytest.raises(ConfigurationError, match="repro\\[compiled\\]"):
            RunOptions.batched(compiled="numba")


class TestOptionsPlumbing:
    def test_compiled_requires_the_batched_backend(self):
        from repro.api import RunOptions

        with pytest.raises(ConfigurationError, match="incoherent options"):
            RunOptions(compiled="numpy")

    def test_fingerprint_records_the_mode_only_where_results_can_move(self):
        from repro.api import RunOptions
        from repro.core.solver import SolverSettings

        adaptive = RunOptions.batched(compiled="numpy")
        assert adaptive.fingerprint()["compiled"] == "numpy"
        fixed = RunOptions.batched(
            compiled="numpy", settings=SolverSettings(fixed_step=1e-4)
        )
        assert fixed.fingerprint()["compiled"] == "off"
        assert RunOptions.batched().fingerprint()["compiled"] == "off"

    def test_options_round_trip_keeps_the_mode(self):
        from repro.api import RunOptions

        options = RunOptions.batched(compiled="numpy")
        assert RunOptions.from_dict(options.to_dict()).compiled == "numpy"
        assert "compiled" not in RunOptions.batched().to_dict()


class TestOverflowSafeGuard:
    def test_norms_survive_components_above_1e154(self):
        x = np.array([[1e200, 1e200], [3.0, 4.0], [np.inf, 1.0]])
        norms = batched_state_norms(x)
        assert norms[0] == pytest.approx(np.sqrt(2.0) * 1e200, rel=1e-12)
        assert norms[1] == 5.0  # safe range stays the plain expression
        assert np.isinf(norms[2])  # genuinely non-finite states still trip

    def test_large_finite_state_is_not_mislabelled_as_diverged(self):
        # before the fix, sqrt(sum(x*x)) overflowed to inf above ~1e154
        # and the guard retired a lane whose true norm was representable
        from repro.core.block import LinearBlock
        from repro.core.elimination import SystemAssembler
        from repro.core.netlist import Netlist
        from repro.core.solver import SolverSettings

        def make_assembler():
            decay = LinearBlock(
                "decay",
                a=np.array([[-1.0, 0.0], [0.0, -1.0]]),
                b=np.array([[0.0], [0.0]]),
                state_names=("u", "v"),
                terminal_names=("p",),
                c=np.array([[1.0, 0.0]]),
                d=np.array([[1.0]]),
            )
            sink = LinearBlock(
                "sink",
                a=np.array([[-2.0]]),
                b=np.array([[0.5]]),
                state_names=("w",),
                terminal_names=("p",),
            )
            netlist = Netlist()
            netlist.add_block(decay)
            netlist.add_block(sink)
            netlist.connect(decay.terminal("p"), sink.terminal("p"))
            return SystemAssembler(netlist)

        settings = SolverSettings(fixed_step=1e-3, divergence_limit=1e300)
        solver = BatchedSolver([make_assembler()], settings=[settings])
        x0 = np.array([[1e155, 1e155, 0.0]])
        batch = solver.run([0.01], x0=x0)
        assert not batch.failures  # decaying, finite: must not be retired
        assert batch.results[0].stats.final_time == pytest.approx(0.01)
