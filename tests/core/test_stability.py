"""Tests for the stability analysis helpers (Eq. 6-7 of the paper)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.stability import (
    diagonal_dominance_step_limit,
    integrator_step_limit,
    is_diagonally_dominant,
    is_spectrally_stable,
    minimum_time_constant,
    spectral_radius,
    spectral_step_limit,
    stiffness_ratio,
)


class TestSpectralRadius:
    def test_diagonal_matrix(self):
        assert spectral_radius(np.diag([-3.0, 2.0])) == pytest.approx(3.0)

    def test_empty_matrix(self):
        assert spectral_radius(np.zeros((0, 0))) == 0.0

    def test_rotation_matrix(self):
        theta = 0.3
        rot = np.array(
            [[np.cos(theta), -np.sin(theta)], [np.sin(theta), np.cos(theta)]]
        )
        assert spectral_radius(rot) == pytest.approx(1.0)


class TestSpectralStepLimit:
    def test_single_decay_mode(self):
        a = np.array([[-100.0]])
        # forward-Euler limit is 2/100 = 0.02, scaled by the safety factor
        assert spectral_step_limit(a, safety=1.0) == pytest.approx(0.02)

    def test_no_decaying_mode_gives_infinity(self):
        assert spectral_step_limit(np.array([[0.0]])) == np.inf
        assert spectral_step_limit(np.array([[1.0]])) == np.inf

    def test_stability_predicate_consistent_with_limit(self):
        a = np.array([[-50.0, 0.0], [0.0, -500.0]])
        h_limit = spectral_step_limit(a, safety=1.0)
        assert is_spectrally_stable(a, 0.99 * h_limit)
        assert not is_spectrally_stable(a, 1.5 * h_limit)

    @given(st.floats(min_value=1.0, max_value=1e6))
    @settings(max_examples=50, deadline=None)
    def test_limit_scales_inversely_with_rate(self, rate):
        a = np.array([[-rate]])
        assert spectral_step_limit(a, safety=1.0) == pytest.approx(2.0 / rate)


class TestIntegratorStepLimit:
    def test_real_mode_scales_with_real_extent(self):
        a = np.array([[-1000.0]])
        limit_fe = integrator_step_limit(a, real_extent=2.0, imag_extent=0.0, safety=1.0)
        limit_ab3 = integrator_step_limit(a, real_extent=6.0 / 11.0, imag_extent=0.72, safety=1.0)
        assert limit_fe == pytest.approx(2.0 / 1000.0)
        assert limit_ab3 == pytest.approx((6.0 / 11.0) / 1000.0)

    def test_oscillatory_mode_needs_imaginary_extent(self):
        # lightly damped oscillator: eigenvalues -1 +/- 440j
        a = np.array([[0.0, 1.0], [-(440.0**2), -2.0]])
        limit_fe = integrator_step_limit(a, real_extent=2.0, imag_extent=0.0, safety=1.0)
        limit_ab3 = integrator_step_limit(a, real_extent=6.0 / 11.0, imag_extent=0.72, safety=1.0)
        # FE collapses towards 2*zeta/omega while AB3 allows ~0.72/omega
        assert limit_fe < 2e-5
        assert limit_ab3 > 1e-3

    def test_requires_positive_real_extent(self):
        with pytest.raises(ValueError):
            integrator_step_limit(np.array([[-1.0]]), real_extent=0.0, imag_extent=0.0)

    def test_empty_matrix(self):
        assert integrator_step_limit(np.zeros((0, 0)), 2.0, 0.0) == np.inf

    def test_unrestricting_modes(self):
        # growing real mode imposes no limit from this criterion
        assert integrator_step_limit(np.array([[1.0]]), 2.0, 0.0) == np.inf


class TestDiagonalDominance:
    def test_predicate(self):
        assert is_diagonally_dominant(np.array([[-2.0, 1.0], [0.5, -1.0]]))
        assert not is_diagonally_dominant(np.array([[-1.0, 2.0], [0.5, -1.0]]))
        assert not is_diagonally_dominant(
            np.array([[-1.0, 1.0], [0.5, -1.0]]), strict=True
        )

    def test_step_limit_single_pole(self):
        a = np.array([[-100.0]])
        assert diagonal_dominance_step_limit(a, safety=1.0) == pytest.approx(0.02)

    def test_step_limit_keeps_total_step_matrix_contractive(self):
        a = np.array([[-200.0, 50.0], [10.0, -100.0]])
        h = diagonal_dominance_step_limit(a, safety=1.0)
        assert spectral_radius(np.eye(2) + h * a) <= 1.0 + 1e-9

    def test_zero_matrix_gives_infinity(self):
        assert diagonal_dominance_step_limit(np.zeros((3, 3))) == np.inf


class TestTimeConstants:
    def test_minimum_time_constant(self):
        a = np.diag([-10.0, -1000.0])
        assert minimum_time_constant(a) == pytest.approx(1e-3)

    def test_no_decaying_modes(self):
        assert minimum_time_constant(np.array([[0.0]])) == np.inf

    def test_stiffness_ratio(self):
        a = np.diag([-1.0, -1e4])
        assert stiffness_ratio(a) == pytest.approx(1e4)
        assert stiffness_ratio(np.array([[-5.0]])) == 1.0
