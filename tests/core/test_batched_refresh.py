"""Batched refresh path: byte-identity, fallbacks, fused elimination."""

from dataclasses import replace

import numpy as np
import pytest

from repro.core.batch import BatchedSolver
from repro.core.block import LinearBlock, PreparedBlockLineariser
from repro.core.elimination import SystemAssembler
from repro.core.errors import ConfigurationError
from repro.core.kernels import _eliminate_lanes_impl, available_backends
from repro.core.netlist import Netlist
from repro.core.solver import SolverSettings
from repro.harvester.scenarios import prepare_assembly

from .test_compiled_kernels import (
    LANE_SETS,
    _assert_batches_identical,
    _fixed_settings,
    _settings_for,
)


def _refresh_run(scenarios, settings_list, compiled="off", refresh="auto",
                 t_end=None):
    structure = prepare_assembly(scenarios[0])
    harvesters = [
        s.build_harvester(assembly_structure=structure) for s in scenarios
    ]
    solver = BatchedSolver(
        [h.assembler for h in harvesters],
        settings=settings_list,
        compiled=compiled,
        refresh=refresh,
    )
    for i, harvester in enumerate(harvesters):
        harvester._wire(solver.lane_wiring(i))
    if t_end is None:
        t_end = [s.duration_s for s in scenarios]
    return solver.run(t_end)


@pytest.mark.parametrize("factory", sorted(LANE_SETS))
class TestFixedStepByteIdentity:
    """refresh="batched" is a caching layer, not an alternative model."""

    def test_compiled_batched_matches_perlane_exactly(self, factory):
        scenarios = LANE_SETS[factory]()
        step = 1e-4 if hasattr(scenarios[0], "config") else 5e-5
        settings = _fixed_settings(scenarios, step, relinearise_interval=8)
        reference = _refresh_run(
            LANE_SETS[factory](), settings, compiled="numpy", refresh="perlane"
        )
        result = _refresh_run(
            LANE_SETS[factory](), settings, compiled="numpy", refresh="batched"
        )
        assert not reference.failures
        for got in result.results:
            assert got.metadata["batched_refresh"] is True
        _assert_batches_identical(reference, result)

    def test_drift_guard_matches_perlane_exactly(self, factory):
        scenarios = LANE_SETS[factory]()
        step = 1e-4 if hasattr(scenarios[0], "config") else 5e-5
        settings = _fixed_settings(
            scenarios, step, relinearise_interval=8,
            relinearise_state_rtol=1e-6,
        )
        reference = _refresh_run(
            LANE_SETS[factory](), settings, compiled="numpy", refresh="perlane"
        )
        result = _refresh_run(
            LANE_SETS[factory](), settings, compiled="numpy", refresh="batched"
        )
        assert not reference.failures
        _assert_batches_identical(reference, result)

    def test_interpreted_loop_honours_forced_batched_refresh(self, factory):
        # compiled="off" + refresh="batched": the prepared workspace path
        # also backs the interpreted reference loop, byte for byte
        scenarios = LANE_SETS[factory]()
        step = 1e-4 if hasattr(scenarios[0], "config") else 5e-5
        settings = _fixed_settings(scenarios, step, relinearise_interval=8)
        reference = _refresh_run(
            LANE_SETS[factory](), settings, compiled="off", refresh="perlane"
        )
        result = _refresh_run(
            LANE_SETS[factory](), settings, compiled="off", refresh="batched"
        )
        assert not reference.failures
        for got in result.results:
            assert got.metadata["batched_refresh"] is True
        _assert_batches_identical(reference, result)


class TestAdaptiveBursts:
    """Adaptive shared-step runs advance in multi-step kernel bursts."""

    def test_numpy_backend_is_bitwise_reproducible(self):
        # stronger than the documented 10 % tolerance: the numpy kernel
        # and negotiate_shared_step replay the interpreted expressions,
        # so even adaptive full-window bursts stay bitwise
        for factory in sorted(LANE_SETS):
            scenarios = LANE_SETS[factory]()
            settings = [
                replace(_settings_for(s), relinearise_interval=8)
                for s in scenarios
            ]
            reference = _refresh_run(
                LANE_SETS[factory](), settings, compiled="off",
                refresh="perlane",
            )
            result = _refresh_run(
                LANE_SETS[factory](), settings, compiled="numpy",
                refresh="auto",
            )
            assert not reference.failures, factory
            _assert_batches_identical(reference, result)

    @pytest.mark.parametrize("backend", available_backends())
    def test_scores_within_tolerance_on_every_backend(self, backend):
        # cross-backend runs may round differently (fused native
        # arithmetic); scores must stay inside the engine's documented
        # 10 % relative tolerance
        scenarios = LANE_SETS["charging"]()
        settings = [
            replace(_settings_for(s), relinearise_interval=8)
            for s in scenarios
        ]
        reference = _refresh_run(
            LANE_SETS["charging"](), settings, compiled="off",
            refresh="perlane",
        )
        result = _refresh_run(
            LANE_SETS["charging"](), settings, compiled=backend,
            refresh="auto",
        )
        assert not reference.failures
        for ref, got in zip(reference.results, result.results):
            for name in ref.traces:
                a = np.asarray(ref[name].values)
                b = np.asarray(got[name].values)
                scale = max(float(np.max(np.abs(a))), 1e-30)
                assert float(np.max(np.abs(a[-1] - b[-1]))) <= 0.10 * scale

    def test_adaptive_bursts_actually_engage(self):
        scenarios = LANE_SETS["charging"]()
        settings = [
            replace(_settings_for(s), relinearise_interval=8)
            for s in scenarios
        ]
        result = _refresh_run(
            LANE_SETS["charging"](), settings, compiled="numpy",
            refresh="auto",
        )
        meta = result.results[0].metadata
        assert meta["compiled_kernel_time_s"] > 0.0
        assert meta["compiled_refresh_time_s"] > 0.0


class TestLaneRetirement:
    """select() must propagate the prepared workspace to compacted clones."""

    def test_perlane_end_times_keep_identity(self):
        scenarios = LANE_SETS["charging"]()
        settings = [
            replace(_settings_for(s), relinearise_interval=8)
            for s in scenarios
        ]
        t_end = [0.008, 0.014, 0.02]
        reference = _refresh_run(
            LANE_SETS["charging"](), settings, compiled="numpy",
            refresh="perlane", t_end=t_end,
        )
        result = _refresh_run(
            LANE_SETS["charging"](), settings, compiled="numpy",
            refresh="batched", t_end=t_end,
        )
        assert not reference.failures
        _assert_batches_identical(reference, result)

    def test_diverging_lane_retires_identically(self):
        scenarios = LANE_SETS["charging"]()
        settings = _fixed_settings(scenarios, 1e-4, relinearise_interval=8)
        settings[1] = replace(settings[1], divergence_limit=1e-9)
        reference = _refresh_run(
            LANE_SETS["charging"](), settings, compiled="numpy",
            refresh="perlane",
        )
        result = _refresh_run(
            LANE_SETS["charging"](), settings, compiled="numpy",
            refresh="batched",
        )
        assert set(result.failures) == {1}
        _assert_batches_identical(reference, result)


# --------------------------------------------------------------------- #
# fallback paths: blocks without (working) batched linearisers
# --------------------------------------------------------------------- #

class _UnpreparedBlock(LinearBlock):
    """A block that opts out of the prepared batched refresh."""

    def batched_lineariser(self, lanes):
        return None


def _mixed_netlist_assembler(block_cls, gain: float) -> SystemAssembler:
    decay = block_cls(
        "decay",
        a=np.array([[-1.0, 0.2], [0.0, -1.5]]),
        b=np.array([[0.0], [0.3]]),
        state_names=("u", "v"),
        terminal_names=("p",),
        c=np.array([[1.0, 0.0]]),
        d=np.array([[1.0]]),
    )
    sink = LinearBlock(
        "sink",
        a=np.array([[-2.0 * gain]]),
        b=np.array([[0.5]]),
        state_names=("w",),
        terminal_names=("p",),
    )
    netlist = Netlist()
    netlist.add_block(decay)
    netlist.add_block(sink)
    netlist.connect(decay.terminal("p"), sink.terminal("p"))
    return SystemAssembler(netlist)


class TestFallbackEquivalence:
    GAINS = (0.8, 1.0, 1.3)

    def _run(self, block_cls, refresh):
        assemblers = [
            _mixed_netlist_assembler(block_cls, g) for g in self.GAINS
        ]
        settings = SolverSettings(fixed_step=1e-3, relinearise_interval=8)
        solver = BatchedSolver(
            assemblers, settings=[settings] * len(assemblers),
            compiled="numpy", refresh=refresh,
        )
        x0 = np.tile(np.array([1.0, -0.5, 0.25]), (len(assemblers), 1))
        return solver.run([0.05] * len(assemblers), x0=x0)

    def test_linear_block_prepared_path_matches_generic(self):
        reference = self._run(LinearBlock, "perlane")
        result = self._run(LinearBlock, "batched")
        assert not reference.failures
        for got in result.results:
            assert got.metadata["batched_refresh"] is True
        _assert_batches_identical(reference, result)

    def test_group_without_batched_lineariser_falls_back_per_group(self):
        # "decay" returns None from batched_lineariser: its group runs
        # the generic per-refresh dispatch while "sink" stays prepared —
        # the mixed workspace must still be byte-identical
        reference = self._run(_UnpreparedBlock, "perlane")
        result = self._run(_UnpreparedBlock, "batched")
        assert not reference.failures
        _assert_batches_identical(reference, result)

    def test_fully_unprepared_batch_degrades_under_auto(self):
        # auto mode unprepares when no group offers a batched lineariser

        class AllUnprepared(_UnpreparedBlock):
            pass

        def build():
            decay = AllUnprepared(
                "decay",
                a=np.array([[-1.0]]),
                b=np.array([[0.0]]),
                state_names=("u",),
                terminal_names=("p",),
                c=np.array([[1.0]]),
                d=np.array([[1.0]]),
            )
            sink = AllUnprepared(
                "sink",
                a=np.array([[-2.0]]),
                b=np.array([[0.5]]),
                state_names=("w",),
                terminal_names=("p",),
            )
            netlist = Netlist()
            netlist.add_block(decay)
            netlist.add_block(sink)
            netlist.connect(decay.terminal("p"), sink.terminal("p"))
            return SystemAssembler(netlist)

        settings = SolverSettings(fixed_step=1e-3, relinearise_interval=4)
        solver = BatchedSolver(
            [build(), build()], settings=[settings] * 2,
            compiled="numpy", refresh="auto",
        )
        batch = solver.run([0.02, 0.02], x0=np.ones((2, 2)))
        assert not batch.failures
        assert batch.results[0].metadata["batched_refresh"] is False


class TestPreparedBlockLineariserContract:
    def test_linear_block_prepared_matches_linearise_batch(self):
        block = LinearBlock(
            "decay",
            a=np.array([[-1.0, 0.2], [0.0, -1.5]]),
            b=np.array([[0.0], [0.3]]),
            state_names=("u", "v"),
            terminal_names=("p",),
            c=np.array([[1.0, 0.0]]),
            d=np.array([[1.0]]),
        )
        lanes = [block, block]
        prepared = block.batched_lineariser(lanes)
        assert isinstance(prepared, PreparedBlockLineariser)
        x = np.array([[0.5, -0.25], [1.0, 2.0]])
        y = np.array([[0.125], [-0.5]])
        fast = prepared.lineariser(0.01, x, y)
        generic = block.linearise_batch(lanes, 0.01, x, y)
        for field in ("jxx", "jxy", "ex", "jyx", "jyy", "ey"):
            assert np.array_equal(getattr(fast, field), getattr(generic, field))

    def test_default_block_offers_no_prepared_lineariser(self):
        block = _UnpreparedBlock(
            "decay",
            a=np.array([[-1.0]]),
            b=np.array([[0.0]]),
            state_names=("u",),
            terminal_names=("p",),
            c=np.array([[1.0]]),
            d=np.array([[1.0]]),
        )
        assert block.batched_lineariser([block]) is None


class TestFusedElimination:
    def test_loop_impl_matches_stacked_numpy_bitwise(self):
        rng = np.random.default_rng(7)
        b, n, m = 5, 4, 3
        jxx = rng.standard_normal((b, n, n))
        jxy = rng.standard_normal((b, n, m))
        ex = rng.standard_normal((b, n))
        jyx = rng.standard_normal((b, m, n))
        jyy = rng.standard_normal((b, m, m)) + 3.0 * np.eye(m)
        ey = rng.standard_normal((b, m))

        # the stacked expressions of BatchedAssembler.eliminate
        rhs = np.empty((b, m, n + 1))
        rhs[:, :, :-1] = jyx
        rhs[:, :, -1] = ey
        solution = np.linalg.solve(jyy, rhs)
        em = -solution[:, :, :-1]
        eo = -solution[:, :, -1]
        a_red = jxx + np.matmul(jxy, em)
        b_red = ex + np.matmul(jxy, eo[..., None])[..., 0]

        k_em, k_eo, k_a, k_b = _eliminate_lanes_impl(jxx, jxy, ex, jyx, jyy, ey)
        assert np.array_equal(k_em, em)
        assert np.array_equal(k_eo, eo)
        assert np.array_equal(k_a, a_red)
        assert np.array_equal(k_b, b_red)

    def test_singular_lane_raises_linalg_error(self):
        jyy = np.zeros((1, 2, 2))
        with pytest.raises(np.linalg.LinAlgError):
            _eliminate_lanes_impl(
                np.zeros((1, 3, 3)), np.zeros((1, 3, 2)), np.zeros((1, 3)),
                np.zeros((1, 2, 3)), jyy, np.zeros((1, 2)),
            )


class TestSolverReusability:
    def test_run_leaves_no_prepared_state_behind(self):
        scenarios = LANE_SETS["charging"]()
        settings = _fixed_settings(scenarios, 1e-4, relinearise_interval=8)
        structure = prepare_assembly(scenarios[0])
        harvesters = [
            s.build_harvester(assembly_structure=structure) for s in scenarios
        ]
        solver = BatchedSolver(
            [h.assembler for h in harvesters],
            settings=settings,
            compiled="numpy",
            refresh="batched",
        )
        for i, harvester in enumerate(harvesters):
            harvester._wire(solver.lane_wiring(i))
        first = solver.run([s.duration_s for s in scenarios])
        assert solver.batched_assembler.prepared is False
        second = solver.run([s.duration_s for s in scenarios])
        _assert_batches_identical(first, second)


class TestOptionsPlumbing:
    def test_refresh_requires_the_batched_backend(self):
        from repro.api import RunOptions

        with pytest.raises(ConfigurationError, match="incoherent options"):
            RunOptions(refresh="batched")
        assert RunOptions.batched(refresh="batched").refresh == "batched"

    def test_unknown_refresh_mode_is_rejected(self):
        from repro.api import RunOptions

        with pytest.raises(ConfigurationError, match="unknown refresh mode"):
            RunOptions.batched(refresh="always")
        with pytest.raises(ConfigurationError, match="unknown refresh mode"):
            BatchedSolver(
                [_mixed_netlist_assembler(LinearBlock, 1.0)], refresh="never"
            )

    def test_refresh_is_excluded_from_the_fingerprint(self):
        # bit-identical paths must share cache entries and checkpoints
        from repro.api import RunOptions

        base = RunOptions.batched().fingerprint()
        forced = RunOptions.batched(refresh="batched").fingerprint()
        assert base == forced
        assert "refresh" not in base

    def test_options_round_trip_keeps_the_mode(self):
        from repro.api import RunOptions

        options = RunOptions.batched(refresh="perlane")
        assert RunOptions.from_dict(options.to_dict()).refresh == "perlane"
        assert "refresh" not in RunOptions.batched().to_dict()
