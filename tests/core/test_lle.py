"""Tests for the local linearisation error monitor (Eq. 3)."""

import numpy as np
import pytest

from repro.core.lle import LLEMonitor


class TestLLEMonitor:
    def test_first_record_has_zero_change(self):
        monitor = LLEMonitor()
        sample = monitor.record(0.0, np.eye(2))
        assert sample.jacobian_change == 0.0

    def test_jacobian_change_is_relative(self):
        monitor = LLEMonitor()
        monitor.record(0.0, np.eye(2))
        sample = monitor.record(0.1, 2.0 * np.eye(2))
        # ||A2 - A1|| / ||A1|| = ||I|| / ||I|| = 1
        assert sample.jacobian_change == pytest.approx(1.0)

    def test_flagging_above_tolerance(self):
        monitor = LLEMonitor(jacobian_tolerance=0.5)
        monitor.record(0.0, np.eye(2))
        monitor.record(0.1, np.eye(2) * 1.1)  # 10 % change: not flagged
        monitor.record(0.2, np.eye(2) * 3.0)  # large change: flagged
        assert monitor.n_flagged == 1
        assert monitor.max_jacobian_change > 0.5

    def test_derivative_mismatch(self):
        monitor = LLEMonitor()
        sample = monitor.record(
            0.0,
            np.eye(1),
            linearised_derivative=np.array([1.0]),
            true_derivative=np.array([1.1]),
        )
        assert sample.derivative_mismatch == pytest.approx(0.1 / 1.1)
        assert monitor.max_derivative_mismatch == pytest.approx(0.1 / 1.1)

    def test_history_kept_only_when_requested(self):
        silent = LLEMonitor(keep_history=False)
        silent.record(0.0, np.eye(1))
        silent.record(0.1, np.eye(1))
        assert silent.history == []
        verbose = LLEMonitor(keep_history=True)
        verbose.record(0.0, np.eye(1))
        verbose.record(0.1, np.eye(1))
        assert len(verbose.history) == 2

    def test_reset(self):
        monitor = LLEMonitor(keep_history=True)
        monitor.record(0.0, np.eye(1))
        monitor.record(0.1, 5.0 * np.eye(1))
        monitor.reset()
        assert monitor.n_flagged == 0
        assert monitor.history == []
        assert monitor.max_jacobian_change == 0.0
        # after reset the next record is treated as the first
        assert monitor.record(0.2, np.eye(1)).jacobian_change == 0.0

    def test_exceeded_helper(self):
        monitor = LLEMonitor(jacobian_tolerance=0.2)
        monitor.record(0.0, np.eye(1))
        sample = monitor.record(0.1, np.eye(1) * 2.0)
        assert monitor.exceeded(sample)

    def test_zero_norm_previous_jacobian(self):
        monitor = LLEMonitor()
        monitor.record(0.0, np.zeros((2, 2)))
        sample = monitor.record(0.1, np.eye(2))
        assert np.isfinite(sample.jacobian_change)
