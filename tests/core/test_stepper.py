"""Tests for the adaptive step-size controller."""

import numpy as np
import pytest

from repro.core.errors import ConfigurationError
from repro.core.integrators import AdamsBashforth, ForwardEuler
from repro.core.stepper import StepControlSettings, StepSizeController


class TestSettingsValidation:
    def test_defaults_are_valid(self):
        StepControlSettings().validate()

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"h_initial": 0.0},
            {"h_min": -1.0},
            {"h_min": 2.0, "h_max": 1.0},
            {"safety": 0.0},
            {"safety": 1.5},
            {"growth_limit": 0.5},
            {"shrink_limit": 0.0},
            {"jacobian_change_target": 0.0},
            {"stability_recompute_threshold": -0.1},
        ],
    )
    def test_invalid_settings(self, kwargs):
        with pytest.raises(ConfigurationError):
            StepControlSettings(**kwargs).validate()


class TestStabilityLimit:
    def test_diagonal_dominance_mode(self):
        settings = StepControlSettings(use_spectral_limit=False, safety=1.0)
        controller = StepSizeController(settings)
        limit = controller.stability_limit(np.array([[-100.0]]))
        assert limit == pytest.approx(0.02)

    def test_spectral_mode_uses_integrator_extents(self):
        settings = StepControlSettings(use_spectral_limit=True, safety=1.0)
        fe = StepSizeController(settings, integrator=ForwardEuler())
        ab3 = StepSizeController(settings, integrator=AdamsBashforth(order=3))
        oscillator = np.array([[0.0, 1.0], [-(440.0**2), -2.0]])
        assert ab3.stability_limit(oscillator) > 50 * fe.stability_limit(oscillator)

    def test_limit_is_cached_until_jacobian_drifts(self):
        settings = StepControlSettings(
            use_spectral_limit=True, stability_recompute_threshold=0.5, safety=1.0
        )
        controller = StepSizeController(settings)
        a = np.array([[-100.0]])
        first = controller.stability_limit(a)
        # small drift: cached value reused even though the true limit changed
        second = controller.stability_limit(np.array([[-110.0]]))
        assert second == first
        # large drift: recomputed
        third = controller.stability_limit(np.array([[-1000.0]]))
        assert third == pytest.approx(2.0 / 1000.0)


class TestPropose:
    def test_respects_h_max(self):
        settings = StepControlSettings(h_initial=1e-3, h_max=2e-3)
        controller = StepSizeController(settings)
        h = controller.propose(np.array([[-1.0]]))
        assert h <= 2e-3

    def test_respects_remaining_time(self):
        controller = StepSizeController(StepControlSettings(h_initial=1e-3))
        h = controller.propose(np.array([[-1.0]]), t_remaining=1e-5)
        assert h == pytest.approx(1e-5)

    def test_growth_is_limited(self):
        settings = StepControlSettings(h_initial=1e-4, growth_limit=1.5, h_max=1.0)
        controller = StepSizeController(settings)
        first = controller.propose(np.array([[-1.0]]))
        second = controller.propose(np.array([[-1.0]]))
        assert second <= first * 1.5 + 1e-15

    def test_large_jacobian_change_shrinks_step(self):
        settings = StepControlSettings(
            h_initial=1e-3, jacobian_change_target=0.01, h_max=1.0
        )
        controller = StepSizeController(settings)
        controller.propose(np.array([[-1.0]]))
        h_before = controller.current_step
        h_after = controller.propose(np.array([[-100.0]]))
        assert h_after < h_before

    def test_never_below_h_min(self):
        settings = StepControlSettings(h_initial=1e-6, h_min=1e-6, h_max=1.0)
        controller = StepSizeController(settings)
        controller.propose(np.array([[-1.0]]))
        h = controller.propose(np.array([[-1e9]]) * 1e6)
        assert h >= 1e-6

    def test_stability_bound_enforced(self):
        settings = StepControlSettings(
            h_initial=1.0, h_max=1.0, safety=1.0, use_spectral_limit=True
        )
        controller = StepSizeController(settings, integrator=ForwardEuler())
        h = controller.propose(np.array([[-1000.0]]))
        assert h <= 2.0 / 1000.0 + 1e-12

    def test_reset_restores_initial_step(self):
        controller = StepSizeController(StepControlSettings(h_initial=1e-4, h_max=1.0))
        for _ in range(5):
            controller.propose(np.array([[-1.0]]))
        assert controller.current_step > 1e-4
        controller.reset()
        assert controller.current_step == pytest.approx(1e-4)
