"""Deterministic tests of the jittered-backoff retry primitive."""

import random

import pytest

from repro._retry import RetryPolicy, backoff_delays, retry_call
from repro.core.errors import ConfigurationError


# ---------------------------------------------------------------------- #
# policy validation
# ---------------------------------------------------------------------- #
@pytest.mark.parametrize(
    "kwargs, fragment",
    [
        ({"base_s": 0.0}, "base_s"),
        ({"factor": 0.5}, "factor"),
        ({"base_s": 1.0, "max_s": 0.5}, "max_s"),
        ({"jitter": 1.0}, "jitter"),
        ({"jitter": -0.1}, "jitter"),
        ({"deadline_s": None, "max_attempts": None}, "unbounded retry policy"),
        ({"deadline_s": 0.0}, "deadline_s"),
        ({"max_attempts": 0, "deadline_s": None}, "max_attempts"),
    ],
)
def test_invalid_policies_are_rejected(kwargs, fragment):
    with pytest.raises(ConfigurationError, match=fragment):
        RetryPolicy(**kwargs)


# ---------------------------------------------------------------------- #
# the delay schedule
# ---------------------------------------------------------------------- #
def test_delays_grow_exponentially_and_cap_without_jitter():
    policy = RetryPolicy(base_s=0.1, factor=2.0, max_s=1.0, jitter=0.0)
    delays = backoff_delays(policy)
    assert [next(delays) for _ in range(6)] == [0.1, 0.2, 0.4, 0.8, 1.0, 1.0]


def test_jitter_shaves_each_delay_within_its_fraction():
    policy = RetryPolicy(base_s=0.1, factor=2.0, max_s=1.0, jitter=0.5)
    delays = backoff_delays(policy, rng=random.Random(7))
    for expected in (0.1, 0.2, 0.4, 0.8, 1.0):
        observed = next(delays)
        assert expected * 0.5 <= observed <= expected


# ---------------------------------------------------------------------- #
# retry_call
# ---------------------------------------------------------------------- #
def flaky(failures, exc=OSError):
    calls = {"n": 0}

    def fn():
        calls["n"] += 1
        if calls["n"] <= failures:
            raise exc(f"transient #{calls['n']}")
        return calls["n"]

    return fn


def test_retries_through_transient_failures_with_backoff_sleeps():
    sleeps = []
    result = retry_call(
        flaky(3),
        policy=RetryPolicy(base_s=0.1, factor=2.0, max_s=1.0, jitter=0.0,
                           max_attempts=10, deadline_s=None),
        sleep=sleeps.append,
    )
    assert result == 4
    assert sleeps == [0.1, 0.2, 0.4]


def test_non_matching_exceptions_propagate_immediately():
    sleeps = []
    with pytest.raises(ValueError, match="transient #1"):
        retry_call(flaky(1, exc=ValueError), sleep=sleeps.append)
    assert sleeps == []  # no retry was even scheduled


def test_exhausted_attempts_reraise_the_last_real_error():
    sleeps = []
    with pytest.raises(OSError, match="transient #3"):
        retry_call(
            flaky(99),
            policy=RetryPolicy(jitter=0.0, max_attempts=3, deadline_s=None),
            sleep=sleeps.append,
        )
    assert len(sleeps) == 2  # attempts 1 and 2 slept; attempt 3 gave up


def test_deadline_stops_before_sleeping_past_the_budget():
    clock = iter([0.0, 0.2, 9.9])  # start, after attempt 1, after attempt 2
    with pytest.raises(OSError, match="transient #2"):
        retry_call(
            flaky(99),
            policy=RetryPolicy(base_s=1.0, max_s=1.0, jitter=0.0, deadline_s=10.0),
            sleep=lambda seconds: None,
            clock=lambda: next(clock),
        )


def test_on_retry_observes_each_scheduled_retry():
    seen = []
    retry_call(
        flaky(2),
        policy=RetryPolicy(base_s=0.1, jitter=0.0, max_attempts=5, deadline_s=None),
        sleep=lambda seconds: None,
        on_retry=lambda attempt, delay, exc: seen.append((attempt, delay, str(exc))),
    )
    assert seen == [
        (1, 0.1, "transient #1"),
        (2, 0.2, "transient #2"),
    ]
