"""Tests for global assembly and terminal-variable elimination (Eq. 4)."""

import numpy as np
import pytest

from repro.core.elimination import SystemAssembler
from repro.core.errors import SingularSystemError
from repro.core.netlist import Netlist

from .test_block_netlist import make_rc_block


def build_two_rc_system(r1=10.0, c1=1e-3, r2=20.0, c2=2e-3):
    """Two RC blocks sharing a port: a classic two-time-constant divider.

    Block "a" and block "b" share the terminal voltage V and current I:
    the algebraic equations are I = (V - Va)/R1 and I = (V - Vb)/R2 ...
    but note both blocks define the current flowing *into* themselves, so
    sharing the same current variable expresses a series connection where
    the same current charges both capacitors from the shared node.
    """
    netlist = Netlist()
    a = netlist.add_block(make_rc_block("a", r1, c1))
    b = netlist.add_block(make_rc_block("b", r2, c2))
    netlist.connect_port(a, b, voltage=("V", "V"), current=("I", "I"), net_prefix="port")
    return netlist, a, b


class TestAssemblerStructure:
    def test_state_and_terminal_counts(self):
        netlist, _, _ = build_two_rc_system()
        assembler = SystemAssembler(netlist)
        assert assembler.n_states == 2
        assert assembler.n_terminals == 2
        assert assembler.state_names() == ["a.Vc", "b.Vc"]
        assert set(assembler.net_names()) == {"port_V", "port_I"}

    def test_state_index_and_slice(self):
        netlist, _, _ = build_two_rc_system()
        assembler = SystemAssembler(netlist)
        assert assembler.state_index("a", "Vc") == 0
        assert assembler.state_index("b", "Vc") == 1
        assert assembler.state_slice("b") == slice(1, 2)

    def test_net_index_shared(self):
        netlist, _, _ = build_two_rc_system()
        assembler = SystemAssembler(netlist)
        assert assembler.net_index("a", "V") == assembler.net_index("b", "V")
        assert assembler.net_index("a", "I") == assembler.net_index("b", "I")

    def test_initial_state_concatenation(self):
        netlist = Netlist()
        from repro.core.block import LinearBlock

        a = netlist.add_block(
            LinearBlock("a", np.array([[-1.0]]), np.zeros((1, 0)), ["x"], [], x0=[2.0])
        )
        b = netlist.add_block(
            LinearBlock("b", np.array([[-1.0]]), np.zeros((1, 0)), ["x"], [], x0=[5.0])
        )
        assembler = SystemAssembler(netlist)
        assert assembler.initial_state() == pytest.approx([2.0, 5.0])


class TestEliminationCorrectness:
    def test_reduced_matrix_matches_hand_derivation(self):
        r1, c1, r2, c2 = 10.0, 1e-3, 20.0, 2e-3
        netlist, _, _ = build_two_rc_system(r1, c1, r2, c2)
        assembler = SystemAssembler(netlist)
        x = np.array([1.0, 0.0])
        reduced = assembler.reduce(0.0, x)

        # hand derivation: with the shared port variables y = [V, I] the two
        # algebraic equations (LinearBlock residual (Vc - V)/R + I = 0) are
        #   g1*Va - g1*V + I = 0  and  g2*Vb - g2*V + I = 0
        # i.e. Jyy y = -Jyx x with the matrices written out explicitly below;
        # substituting the solved y into the block state equations yields the
        # reduced state matrix.
        g1, g2 = 1.0 / r1, 1.0 / r2
        jyy = np.array([[-g1, 1.0], [-g2, 1.0]])
        jyx = np.array([[g1, 0.0], [0.0, g2]])
        elimination = -np.linalg.solve(jyy, jyx)  # y = elimination @ x
        v_row = elimination[0, :]  # V as a linear function of [Va, Vb]
        a_hand = np.zeros((2, 2))
        a_hand[0, :] = (v_row - np.array([1.0, 0.0])) / (r1 * c1)
        a_hand[1, :] = (v_row - np.array([0.0, 1.0])) / (r2 * c2)
        assert reduced.a_reduced == pytest.approx(a_hand)

    def test_terminal_solution_satisfies_algebraic_equations(self):
        netlist, _, _ = build_two_rc_system()
        assembler = SystemAssembler(netlist)
        x = np.array([0.7, -0.2])
        lin = assembler.assemble(0.0, x, np.zeros(2))
        reduced = assembler.eliminate(lin, x)
        _, residual = assembler.full_residual(0.0, x, reduced.y_solution)
        assert residual == pytest.approx(np.zeros(2), abs=1e-12)

    def test_reduced_derivative_matches_full_model(self):
        netlist, _, _ = build_two_rc_system()
        assembler = SystemAssembler(netlist)
        x = np.array([0.4, 0.9])
        reduced = assembler.reduce(0.0, x)
        dxdt_full, _ = assembler.full_residual(0.0, x, reduced.y_solution)
        assert reduced.derivative(x) == pytest.approx(dxdt_full)

    def test_terminal_values_helper(self):
        netlist, _, _ = build_two_rc_system()
        assembler = SystemAssembler(netlist)
        x = np.array([1.0, 1.0])
        reduced = assembler.reduce(0.0, x)
        assert reduced.terminal_values(x) == pytest.approx(reduced.y_solution)

    def test_passive_series_loop_eigenvalues_are_stable(self):
        # block "b" sources the shared current while block "a" sinks it: the
        # two capacitors exchange charge through the two resistors, a passive
        # configuration whose modes must all decay
        netlist = Netlist()
        a = netlist.add_block(make_rc_block("a", 10.0, 1e-3))
        b = netlist.add_block(make_rc_block("b", 20.0, 2e-3, invert_current=True))
        netlist.connect_port(a, b, voltage=("V", "V"), current=("I", "I"))
        assembler = SystemAssembler(netlist)
        reduced = assembler.reduce(0.0, np.array([0.5, -0.5]))
        eigenvalues = np.linalg.eigvals(reduced.a_reduced)
        assert np.all(np.real(eigenvalues) <= 1e-12)


class TestSingularSystems:
    def test_floating_port_raises(self):
        """Two blocks whose shared current is never constrained -> singular."""
        from repro.core.block import LinearBlock

        netlist = Netlist()
        # both blocks treat the port voltage as an input but neither
        # constrains the current -> Jyy singular
        a = netlist.add_block(
            LinearBlock(
                "a",
                np.array([[-1.0]]),
                np.array([[1.0, 0.0]]),
                ["x"],
                ["V", "I"],
                c=np.array([[0.0]]),
                d=np.array([[1.0, 0.0]]),
            )
        )
        b = netlist.add_block(
            LinearBlock(
                "b",
                np.array([[-1.0]]),
                np.array([[1.0, 0.0]]),
                ["x"],
                ["V", "I"],
                c=np.array([[0.0]]),
                d=np.array([[1.0, 0.0]]),
            )
        )
        netlist.connect_port(a, b, voltage=("V", "V"), current=("I", "I"))
        assembler = SystemAssembler(netlist)
        with pytest.raises(SingularSystemError):
            assembler.reduce(0.0, np.array([0.0, 0.0]))

    def test_no_terminals_reduces_to_block_dynamics(self):
        from repro.core.block import LinearBlock

        netlist = Netlist()
        netlist.add_block(
            LinearBlock("solo", np.array([[-3.0]]), np.zeros((1, 0)), ["x"], [])
        )
        assembler = SystemAssembler(netlist)
        reduced = assembler.reduce(0.0, np.array([2.0]))
        assert reduced.a_reduced == pytest.approx(np.array([[-3.0]]))
        assert reduced.derivative(np.array([2.0]))[0] == pytest.approx(-6.0)
