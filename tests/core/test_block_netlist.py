"""Tests for the analogue-block framework and the netlist wiring."""

import numpy as np
import pytest

from repro.core.block import AnalogueBlock, BlockLinearisation, LinearBlock
from repro.core.errors import ConfigurationError, ConnectionError_
from repro.core.linearise import (
    finite_difference_jacobian,
    linearise_block,
    linearise_block_numerically,
)
from repro.core.netlist import Netlist


def make_rc_block(name="rc", r=10.0, c=1e-3, invert_current=False):
    """Simple RC block: state = capacitor voltage, terminals = (V, I).

    dVc/dt = (V - Vc) / (R C) and the algebraic equation is the terminal
    current I = (V - Vc)/R (or its negative when ``invert_current`` is set,
    which models the current flowing out of the block into the shared node —
    needed to wire two such blocks into a passive series loop).
    """
    a = np.array([[-1.0 / (r * c)]])
    b = np.array([[1.0 / (r * c), 0.0]])
    c_mat = np.array([[1.0 / r]])
    sign = -1.0 if invert_current else 1.0
    d_mat = np.array([[-1.0 / r, sign]])
    return LinearBlock(
        name,
        a,
        b,
        state_names=["Vc"],
        terminal_names=["V", "I"],
        c=c_mat,
        d=d_mat,
        terminal_kinds=["voltage", "current"],
    )


class NonlinearTestBlock(AnalogueBlock):
    """dx/dt = -x^3 + y, algebraic: y - sin(x) = 0 (for FD Jacobian tests)."""

    def __init__(self):
        super().__init__("nl", ["x"], ["y"], n_algebraic=1)

    def derivatives(self, t, x, y):
        return np.array([-x[0] ** 3 + y[0]])

    def algebraic_residual(self, t, x, y):
        return np.array([y[0] - np.sin(x[0])])


class TestLinearBlock:
    def test_shape_validation(self):
        with pytest.raises(ConfigurationError):
            LinearBlock("b", np.zeros((2, 3)), np.zeros((2, 1)), ["a", "b"], ["t"])
        with pytest.raises(ConfigurationError):
            LinearBlock("b", np.zeros((2, 2)), np.zeros((3, 1)), ["a", "b"], ["t"])
        with pytest.raises(ConfigurationError):
            LinearBlock("b", np.zeros((2, 2)), np.zeros((2, 1)), ["a"], ["t"])

    def test_duplicate_names_rejected(self):
        with pytest.raises(ConfigurationError):
            LinearBlock("b", np.zeros((2, 2)), np.zeros((2, 1)), ["a", "a"], ["t"])

    def test_empty_name_rejected(self):
        with pytest.raises(ConfigurationError):
            LinearBlock("", np.zeros((1, 1)), np.zeros((1, 1)), ["a"], ["t"])

    def test_derivatives_and_residual(self):
        block = make_rc_block()
        x = np.array([1.0])
        y = np.array([2.0, 0.0])
        dxdt = block.derivatives(0.0, x, y)
        assert dxdt[0] == pytest.approx((2.0 - 1.0) / (10.0 * 1e-3))
        res = block.algebraic_residual(0.0, x, y)
        assert res[0] == pytest.approx(1.0 / 10.0 - 2.0 / 10.0 + 0.0)

    def test_linearise_is_exact(self):
        block = make_rc_block()
        lin = block.linearise(0.0, np.array([0.5]), np.array([1.0, 0.1]))
        assert lin.jxx[0, 0] == pytest.approx(-100.0)
        assert lin.jxy[0, 0] == pytest.approx(100.0)

    def test_excitation_callable(self):
        block = LinearBlock(
            "src",
            np.array([[-1.0]]),
            np.zeros((1, 0)),
            ["x"],
            [],
            excitation=lambda t: np.array([t]),
        )
        assert block.derivatives(2.0, np.array([0.0]), np.zeros(0))[0] == pytest.approx(2.0)

    def test_initial_state(self):
        block = LinearBlock(
            "b", np.array([[-1.0]]), np.zeros((1, 0)), ["x"], [], x0=[3.0]
        )
        assert block.initial_state()[0] == pytest.approx(3.0)

    def test_terminal_lookup_and_error(self):
        block = make_rc_block()
        terminal = block.terminal("V")
        assert str(terminal) == "rc.V"
        with pytest.raises(ConfigurationError):
            block.terminal("missing")

    def test_apply_control_default_rejects(self):
        with pytest.raises(ConfigurationError):
            make_rc_block().apply_control("anything", 1.0)

    def test_qualified_state_names(self):
        assert make_rc_block("blk").qualified_state_names() == ("blk.Vc",)


class TestBlockLinearisationValidation:
    def test_shape_mismatch_raises(self):
        lin = BlockLinearisation(
            jxx=np.zeros((1, 1)),
            jxy=np.zeros((1, 2)),
            ex=np.zeros(1),
            jyx=np.zeros((1, 1)),
            jyy=np.zeros((1, 2)),
            ey=np.zeros(1),
        )
        lin.validate(1, 2, 1)
        with pytest.raises(ConfigurationError):
            lin.validate(2, 2, 1)


class TestNumericalLinearisation:
    def test_finite_difference_jacobian(self):
        func = lambda z: np.array([z[0] ** 2 + z[1], 3.0 * z[1]])
        jac = finite_difference_jacobian(func, np.array([2.0, 1.0]))
        assert jac == pytest.approx(np.array([[4.0, 1.0], [0.0, 3.0]]), abs=1e-5)

    def test_numeric_matches_analytic_for_linear_block(self):
        block = make_rc_block()
        x = np.array([0.3])
        y = np.array([1.2, 0.05])
        analytic = block.linearise(0.0, x, y)
        numeric = linearise_block_numerically(block, 0.0, x, y)
        assert numeric.jxx == pytest.approx(analytic.jxx, abs=1e-6)
        assert numeric.jxy == pytest.approx(analytic.jxy, abs=1e-6)
        assert numeric.jyx == pytest.approx(analytic.jyx, abs=1e-6)
        assert numeric.jyy == pytest.approx(analytic.jyy, abs=1e-6)

    def test_affine_model_exact_at_expansion_point(self):
        block = NonlinearTestBlock()
        x = np.array([0.7])
        y = np.array([0.2])
        lin = linearise_block_numerically(block, 0.0, x, y)
        model = lin.jxx @ x + lin.jxy @ y + lin.ex
        assert model == pytest.approx(block.derivatives(0.0, x, y), abs=1e-7)
        alg = lin.jyx @ x + lin.jyy @ y + lin.ey
        assert alg == pytest.approx(block.algebraic_residual(0.0, x, y), abs=1e-7)

    def test_linearise_block_prefers_analytic(self):
        block = make_rc_block()
        lin = linearise_block(block, 0.0, np.array([0.0]), np.array([0.0, 0.0]))
        assert lin.jxx[0, 0] == pytest.approx(-100.0)

    def test_linearise_block_falls_back_to_numeric(self):
        block = NonlinearTestBlock()
        lin = linearise_block(block, 0.0, np.array([1.0]), np.array([0.0]))
        assert lin.jxx[0, 0] == pytest.approx(-3.0, abs=1e-5)
        assert lin.jyx[0, 0] == pytest.approx(-np.cos(1.0), abs=1e-5)


class TestNetlist:
    def test_duplicate_block_name(self):
        net = Netlist()
        net.add_block(make_rc_block("a"))
        with pytest.raises(ConfigurationError):
            net.add_block(make_rc_block("a"))

    def test_connect_unregistered_block(self):
        net = Netlist()
        a = make_rc_block("a")
        b = make_rc_block("b")
        net.add_block(a)
        with pytest.raises(ConnectionError_):
            net.connect(a.terminal("V"), b.terminal("V"))

    def test_kind_mismatch(self):
        net = Netlist()
        a = net.add_block(make_rc_block("a"))
        b = net.add_block(make_rc_block("b"))
        with pytest.raises(ConnectionError_):
            net.connect(a.terminal("V"), b.terminal("I"))

    def test_build_nets_merges_connected_terminals(self):
        net = Netlist()
        a = net.add_block(make_rc_block("a"))
        b = net.add_block(make_rc_block("b"))
        net.connect(a.terminal("V"), b.terminal("V"), net_name="shared_v")
        nets = net.build_nets()
        names = [n.name for n in nets]
        assert "shared_v" in names
        shared = next(n for n in nets if n.name == "shared_v")
        assert len(shared.terminals) == 2
        # 4 terminals total, 2 merged -> 3 nets
        assert len(nets) == 3

    def test_connect_port_names_nets(self):
        net = Netlist()
        a = net.add_block(make_rc_block("a"))
        b = net.add_block(make_rc_block("b"))
        net.connect_port(a, b, voltage=("V", "V"), current=("I", "I"), net_prefix="p")
        names = [n.name for n in net.build_nets()]
        assert "p_V" in names and "p_I" in names

    def test_validate_square_system(self):
        net = Netlist()
        a = net.add_block(make_rc_block("a"))
        b = net.add_block(make_rc_block("b"))
        net.connect_port(a, b, voltage=("V", "V"), current=("I", "I"))
        net.validate()  # 2 nets, 2 algebraic equations

    def test_validate_rejects_unconnected_system(self):
        net = Netlist()
        net.add_block(make_rc_block("a"))
        net.add_block(make_rc_block("b"))
        with pytest.raises(ConnectionError_):
            net.validate()  # 4 nets but only 2 equations

    def test_block_lookup(self):
        net = Netlist()
        block = net.add_block(make_rc_block("a"))
        assert net.block("a") is block
        with pytest.raises(ConfigurationError):
            net.block("missing")

    def test_terminal_index_map_consistent(self):
        net = Netlist()
        a = net.add_block(make_rc_block("a"))
        b = net.add_block(make_rc_block("b"))
        net.connect(a.terminal("V"), b.terminal("V"))
        mapping = net.terminal_index_map()
        assert mapping["a.V"] == mapping["b.V"]
        assert mapping["a.I"] != mapping["b.I"]
