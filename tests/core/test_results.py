"""Tests for traces, recorders, statistics and result containers."""

import time

import numpy as np
import pytest

from repro.core.errors import ConfigurationError
from repro.core.results import (
    SimulationResult,
    SolverStats,
    Stopwatch,
    Trace,
    TraceRecorder,
    merge_results,
)


class TestTrace:
    def test_append_and_read(self):
        trace = Trace("v", unit="V")
        trace.append(0.0, 1.0)
        trace.append(1.0, 3.0)
        assert len(trace) == 2
        assert trace.times == pytest.approx([0.0, 1.0])
        assert trace.values == pytest.approx([1.0, 3.0])
        assert trace.final() == pytest.approx(3.0)

    def test_non_monotonic_time_rejected(self):
        trace = Trace("v")
        trace.append(1.0, 0.0)
        with pytest.raises(ConfigurationError):
            trace.append(0.5, 0.0)

    def test_extend_length_mismatch(self):
        trace = Trace("v")
        with pytest.raises(ConfigurationError):
            trace.extend([0.0, 1.0], [1.0])

    def test_interpolated_read(self):
        trace = Trace("v")
        trace.extend([0.0, 2.0], [0.0, 4.0])
        assert trace.at(1.0) == pytest.approx(2.0)

    def test_empty_trace_errors(self):
        trace = Trace("v")
        with pytest.raises(ConfigurationError):
            trace.at(0.0)
        with pytest.raises(ConfigurationError):
            trace.final()

    def test_resample_and_window(self):
        trace = Trace("v")
        trace.extend([0.0, 1.0, 2.0, 3.0], [0.0, 1.0, 2.0, 3.0])
        resampled = trace.resample([0.5, 1.5])
        assert resampled.values == pytest.approx([0.5, 1.5])
        window = trace.window(1.0, 2.0)
        assert len(window) == 2
        assert window.times == pytest.approx([1.0, 2.0])

    def test_append_after_read_invalidates_cache(self):
        trace = Trace("v")
        trace.append(0.0, 1.0)
        _ = trace.values
        trace.append(1.0, 2.0)
        assert trace.values == pytest.approx([1.0, 2.0])


class TestSolverStats:
    def test_register_step(self):
        stats = SolverStats()
        stats.register_step(1e-3)
        stats.register_step(2e-3)
        stats.register_step(5e-4, accepted=False)
        assert stats.n_steps == 3
        assert stats.n_accepted_steps == 2
        assert stats.n_rejected_steps == 1
        assert stats.min_step == pytest.approx(1e-3)
        assert stats.max_step == pytest.approx(2e-3)

    def test_as_dict_round_trip(self):
        stats = SolverStats(solver_name="x", cpu_time_s=1.5)
        data = stats.as_dict()
        assert data["solver_name"] == "x"
        assert data["cpu_time_s"] == pytest.approx(1.5)


class TestTraceRecorder:
    def test_records_every_sample_without_interval(self):
        recorder = TraceRecorder()
        recorder.record(0.0, {"a": 1.0})
        recorder.record(0.001, {"a": 2.0})
        assert len(recorder.traces["a"]) == 2

    def test_decimation(self):
        recorder = TraceRecorder(record_interval=1.0)
        for t in np.linspace(0.0, 2.0, 21):
            recorder.record(float(t), {"a": float(t)})
        # only samples at least 1.0 apart are kept
        assert len(recorder.traces["a"]) == 3

    def test_force_overrides_decimation(self):
        recorder = TraceRecorder(record_interval=10.0)
        recorder.record(0.0, {"a": 1.0})
        recorder.record(0.1, {"a": 2.0}, force=True)
        assert len(recorder.traces["a"]) == 2


class TestSimulationResult:
    def test_trace_lookup_and_error(self):
        result = SimulationResult()
        trace = Trace("x")
        trace.append(0.0, 1.0)
        result.add_trace(trace)
        assert result["x"] is trace
        assert "x" in result
        with pytest.raises(KeyError):
            result["missing"]

    def test_duplicate_trace_rejected(self):
        result = SimulationResult()
        result.add_trace(Trace("x"))
        with pytest.raises(ConfigurationError):
            result.add_trace(Trace("x"))

    def test_trace_names_sorted(self):
        result = SimulationResult()
        result.add_trace(Trace("b"))
        result.add_trace(Trace("a"))
        assert result.trace_names() == ["a", "b"]


class TestMergeResults:
    def test_traces_concatenated_and_stats_summed(self):
        first = SimulationResult()
        t1 = Trace("v")
        t1.extend([0.0, 1.0], [0.0, 1.0])
        first.add_trace(t1)
        first.stats.cpu_time_s = 1.0
        first.stats.final_time = 1.0

        second = SimulationResult()
        t2 = Trace("v")
        t2.extend([1.0, 2.0], [1.0, 2.0])
        second.add_trace(t2)
        second.stats.cpu_time_s = 2.0
        second.stats.final_time = 2.0

        merged = merge_results([first, second])
        assert len(merged["v"]) == 4
        assert merged.stats.cpu_time_s == pytest.approx(3.0)
        assert merged.stats.final_time == pytest.approx(2.0)


class TestStopwatch:
    def test_measures_elapsed_time(self):
        with Stopwatch() as watch:
            time.sleep(0.01)
        assert watch.elapsed >= 0.009
