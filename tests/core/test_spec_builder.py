"""Registry, SystemSpec validation/serialisation and SystemBuilder tests.

Covers the declarative system-description layer: schema-checked block
registry, spec validation error paths (unknown keys, duplicate names,
dangling terminals), lossless dict/JSON round-trips, structural topology
hashing, and the headline equivalence guarantee — the spec-built paper
system produces *byte-identical* waveforms to a hand-wired assembly of
the same blocks.
"""

import numpy as np
import pytest

from repro.blocks.microgenerator import ElectromagneticMicrogenerator
from repro.blocks.supercapacitor import Supercapacitor
from repro.blocks.vibration import VibrationSource
from repro.blocks.voltage_multiplier import DicksonMultiplier
from repro.core import (
    BLOCK_REGISTRY,
    BlockSpec,
    ConnectionSpec,
    ExcitationSpec,
    Netlist,
    ProbeSpec,
    SystemAssembler,
    SystemBuilder,
    SystemSpec,
)
from repro.core.builder import solver_settings_for_frequency
from repro.core.errors import ConfigurationError, ConnectionError_
from repro.core.solver import LinearisedStateSpaceSolver
from repro.harvester.config import paper_harvester
from repro.harvester.system import default_solver_settings, paper_spec


def _minimal_spec(**overrides):
    """A small valid spec (generator -> multiplier -> storage)."""
    fields = dict(
        name="minimal",
        blocks=(
            BlockSpec("piezoelectric_generator", "generator", {}),
            BlockSpec("dickson_multiplier", "multiplier", {"n_stages": 3}),
            BlockSpec("supercapacitor", "storage", {}),
        ),
        connections=(
            ConnectionSpec("generator", "multiplier", ("Vm", "Vm"), ("Im", "Im")),
            ConnectionSpec("multiplier", "storage", ("Vc", "Vc"), ("Ic", "Ic")),
        ),
        excitation=ExcitationSpec(frequency_hz=70.0, amplitude_ms2=0.5),
    )
    fields.update(overrides)
    return SystemSpec(**fields)


class TestRegistry:
    def test_stock_library_keys_present(self):
        keys = BLOCK_REGISTRY.keys()
        for key in (
            "electromagnetic_generator",
            "piezoelectric_generator",
            "electrostatic_generator",
            "dickson_multiplier",
            "supercapacitor",
            "tuning_controller",
            "vibration_source",
        ):
            assert key in keys

    def test_unknown_key_names_key_and_lists_options(self):
        with pytest.raises(ConfigurationError, match="no_such_block"):
            BLOCK_REGISTRY.get("no_such_block")

    def test_unknown_parameter_rejected(self):
        with pytest.raises(ConfigurationError, match="bogus_param"):
            BLOCK_REGISTRY.validate_params(
                "supercapacitor", {"bogus_param": 1.0}
            )

    def test_missing_required_parameter_rejected(self):
        with pytest.raises(ConfigurationError, match="proof_mass_kg"):
            BLOCK_REGISTRY.validate_params("electromagnetic_generator", {})

    def test_type_mismatch_rejected(self):
        with pytest.raises(ConfigurationError, match="n_stages"):
            BLOCK_REGISTRY.validate_params(
                "dickson_multiplier", {"n_stages": "five"}
            )

    def test_defaults_applied(self):
        params = BLOCK_REGISTRY.validate_params("supercapacitor", {})
        assert params["immediate_resistance_ohm"] == pytest.approx(2.5)

    def test_role_mismatch_rejected(self):
        with pytest.raises(ConfigurationError, match="role"):
            BLOCK_REGISTRY.get("tuning_controller", expect_role="analogue")


class TestSpecValidation:
    def test_valid_spec_passes(self):
        _minimal_spec().validate()

    def test_unknown_block_key(self):
        spec = _minimal_spec(
            blocks=(
                BlockSpec("warp_drive", "generator", {}),
                BlockSpec("dickson_multiplier", "multiplier", {"n_stages": 3}),
                BlockSpec("supercapacitor", "storage", {}),
            )
        )
        with pytest.raises(ConfigurationError, match="warp_drive"):
            spec.validate()

    def test_duplicate_block_name(self):
        spec = _minimal_spec(
            blocks=(
                BlockSpec("piezoelectric_generator", "generator", {}),
                BlockSpec("dickson_multiplier", "generator", {"n_stages": 3}),
                BlockSpec("supercapacitor", "storage", {}),
            )
        )
        with pytest.raises(ConfigurationError, match="duplicate block name 'generator'"):
            spec.validate()

    def test_dangling_terminal_named_in_error(self):
        spec = _minimal_spec(
            connections=(
                ConnectionSpec("generator", "multiplier", ("Vxx", "Vm"), ("Im", "Im")),
                ConnectionSpec("multiplier", "storage", ("Vc", "Vc"), ("Ic", "Ic")),
            )
        )
        with pytest.raises(ConnectionError_, match="generator.Vxx"):
            spec.validate()

    def test_connection_to_unknown_block(self):
        spec = _minimal_spec(
            connections=(
                ConnectionSpec("generator", "rectifier", ("Vm", "Vm"), ("Im", "Im")),
            )
        )
        with pytest.raises(ConnectionError_, match="rectifier"):
            spec.validate()

    def test_bad_block_parameter_names_block(self):
        spec = _minimal_spec(
            blocks=(
                BlockSpec("piezoelectric_generator", "generator", {"mass": 1.0}),
                BlockSpec("dickson_multiplier", "multiplier", {"n_stages": 3}),
                BlockSpec("supercapacitor", "storage", {}),
            )
        )
        with pytest.raises(ConfigurationError, match="block 'generator'"):
            spec.validate()

    def test_probe_with_unknown_terminal(self):
        spec = _minimal_spec(
            probes=(ProbeSpec("p", "terminal", "storage", ("Vzz",)),)
        )
        with pytest.raises(ConnectionError_, match="storage.Vzz"):
            spec.validate()

    def test_unknown_probe_kind(self):
        spec = _minimal_spec(probes=(ProbeSpec("p", "voltage", "storage", ("Vc",)),))
        with pytest.raises(ConfigurationError, match="probe 'p'"):
            spec.validate()

    def test_empty_spec_rejected(self):
        with pytest.raises(ConfigurationError, match="no blocks"):
            SystemSpec(name="empty", blocks=()).validate()


class TestSpecSerialisation:
    def test_dict_round_trip_minimal(self):
        spec = _minimal_spec()
        assert SystemSpec.from_dict(spec.to_dict()) == spec

    def test_dict_round_trip_paper(self):
        spec = paper_spec()
        assert SystemSpec.from_dict(spec.to_dict()) == spec

    def test_json_round_trip_paper(self):
        spec = paper_spec()
        assert SystemSpec.from_json(spec.to_json()) == spec

    def test_unknown_dict_field_rejected(self):
        data = _minimal_spec().to_dict()
        data["blobs"] = []
        with pytest.raises(ConfigurationError, match="blobs"):
            SystemSpec.from_dict(data)

    def test_round_trip_preserves_validation(self):
        spec = SystemSpec.from_dict(paper_spec().to_dict())
        spec.validate()  # must not raise

    def test_with_block_params_round_trip(self):
        spec = _minimal_spec().with_block_params("multiplier", {"n_stages": 4})
        assert spec.block("multiplier").params["n_stages"] == 4
        assert SystemSpec.from_dict(spec.to_dict()) == spec


class TestTopologyHash:
    def test_param_only_change_keeps_hash(self):
        a = _minimal_spec()
        b = a.with_block_params("storage", {"initial_voltage_v": 2.0})
        assert a.topology_hash() == b.topology_hash()

    def test_structural_param_changes_hash(self):
        a = _minimal_spec()
        b = a.with_block_params("multiplier", {"n_stages": 4})
        assert a.topology_hash() != b.topology_hash()

    def test_block_key_changes_hash(self):
        a = _minimal_spec()
        b = a.with_block(BlockSpec("electrostatic_generator", "generator", {}))
        assert a.topology_hash() != b.topology_hash()

    def test_excitation_change_keeps_hash(self):
        a = _minimal_spec()
        b = a.with_excitation(frequency_hz=99.0)
        assert a.topology_hash() == b.topology_hash()


def _hand_wired_paper_solver(cfg, duration_ignored=None):
    """The legacy hand-wiring of the paper system (no controller)."""
    source = VibrationSource(cfg.excitation.frequency_hz, cfg.excitation.amplitude_ms2)
    generator = ElectromagneticMicrogenerator(
        cfg.generator, source.acceleration, name="generator"
    )
    multiplier = DicksonMultiplier(
        n_stages=cfg.multiplier_stages,
        stage_capacitance_f=cfg.multiplier_capacitance_f,
        output_capacitance_f=cfg.multiplier_output_capacitance_f,
        input_capacitance_f=cfg.multiplier_input_capacitance_f,
        diode_params=cfg.diode,
        name="multiplier",
    )
    storage = Supercapacitor(
        params=cfg.supercapacitor,
        load_profile=cfg.load_profile,
        initial_voltage_v=cfg.initial_storage_voltage_v,
        name="storage",
    )
    netlist = Netlist()
    netlist.add_block(generator)
    netlist.add_block(multiplier)
    netlist.add_block(storage)
    netlist.connect_port(
        generator,
        multiplier,
        voltage=("Vm", "Vm"),
        current=("Im", "Im"),
        net_prefix="generator_output",
    )
    netlist.connect_port(
        multiplier,
        storage,
        voltage=("Vc", "Vc"),
        current=("Ic", "Ic"),
        net_prefix="storage_port",
    )
    assembler = SystemAssembler(netlist)
    solver = LinearisedStateSpaceSolver(
        assembler=assembler,
        settings=default_solver_settings(cfg.excitation.frequency_hz),
    )
    idx_vm = assembler.net_index("generator", "Vm")
    idx_im = assembler.net_index("generator", "Im")
    idx_vc = assembler.net_index("storage", "Vc")
    solver.add_probe("generator_power", lambda t, x, y: float(y[idx_vm] * y[idx_im]))
    solver.add_probe("storage_voltage", lambda t, x, y: float(y[idx_vc]))
    return solver


class TestBuilderEquivalence:
    def test_spec_built_paper_system_matches_hand_wiring_byte_identically(self):
        cfg = paper_harvester().with_initial_storage_voltage(0.0).with_initial_tuning(None)

        hand = _hand_wired_paper_solver(cfg)
        hand_result = hand.run(0.1)

        built = SystemBuilder(paper_spec(cfg, with_controller=False)).build()
        solver = built.build_solver(
            settings=default_solver_settings(cfg.excitation.frequency_hz)
        )
        spec_result = solver.run(0.1)

        for trace in ("storage_voltage", "generator_power"):
            assert np.array_equal(
                hand_result[trace].times, spec_result[trace].times
            ), f"{trace}: time grids differ"
            assert np.array_equal(
                hand_result[trace].values, spec_result[trace].values
            ), f"{trace}: waveforms differ"

    def test_builder_reuses_assembly_structure(self):
        spec = paper_spec(with_controller=False)
        first = SystemBuilder(spec).build()
        second = SystemBuilder(spec).build(
            assembly_structure=first.assembly_structure
        )
        assert second.assembly_structure is first.assembly_structure
        r1 = first.build_solver().run(0.02)
        r2 = second.build_solver().run(0.02)
        assert np.array_equal(
            r1["storage_voltage"].values, r2["storage_voltage"].values
        )

    def test_builder_rejects_mismatched_terminals_role(self):
        spec = _minimal_spec(
            blocks=(
                BlockSpec("vibration_source", "generator", {"frequency_hz": 1.0, "amplitude_ms2": 1.0}),
                BlockSpec("dickson_multiplier", "multiplier", {"n_stages": 3}),
                BlockSpec("supercapacitor", "storage", {}),
            )
        )
        with pytest.raises(ConfigurationError, match="role"):
            SystemBuilder(spec)

    def test_default_solver_settings_alias(self):
        assert default_solver_settings(70.0) == solver_settings_for_frequency(70.0)
