"""Tests for the linearised state-space solver on small known systems."""

import math

import numpy as np
import pytest

from repro.core.block import LinearBlock
from repro.core.digital import DigitalEventKernel, DigitalProcess
from repro.core.elimination import SystemAssembler
from repro.core.errors import ConfigurationError, StabilityError
from repro.core.integrators import AdamsBashforth, RungeKutta4
from repro.core.netlist import Netlist
from repro.core.solver import LinearisedStateSpaceSolver, SolverSettings
from repro.core.stepper import StepControlSettings

from .test_block_netlist import make_rc_block


def single_decay_assembler(rate=5.0, x0=1.0):
    """One isolated block dx/dt = -rate * x."""
    netlist = Netlist()
    netlist.add_block(
        LinearBlock(
            "decay", np.array([[-rate]]), np.zeros((1, 0)), ["x"], [], x0=[x0]
        )
    )
    return SystemAssembler(netlist)


def driven_rc_assembler():
    """RC block driven through its port by a controllable source block."""

    class SourceBlock(LinearBlock):
        """Ideal source: algebraic equation V - level = 0, no states."""

        def __init__(self):
            super().__init__(
                "source",
                np.zeros((0, 0)),
                np.zeros((0, 2)),
                [],
                ["V", "I"],
                c=np.zeros((1, 0)),
                d=np.array([[1.0, 0.0]]),
                terminal_kinds=["voltage", "current"],
            )
            self.level = 1.0

        def algebraic_residual(self, t, x, y):
            return np.array([y[0] - self.level])

        def linearise(self, t, x, y):
            lin = super().linearise(t, x, y)
            lin.ey = np.array([-self.level])
            return lin

        def apply_control(self, name, value):
            if name == "level":
                self.level = float(value)
                return
            super().apply_control(name, value)

    netlist = Netlist()
    source = netlist.add_block(SourceBlock())
    rc = netlist.add_block(make_rc_block("rc", r=10.0, c=1e-2))
    netlist.connect_port(source, rc, voltage=("V", "V"), current=("I", "I"), net_prefix="port")
    return SystemAssembler(netlist), source


class TestLinearSystems:
    def test_exponential_decay_accuracy(self):
        assembler = single_decay_assembler(rate=5.0, x0=1.0)
        solver = LinearisedStateSpaceSolver(
            assembler,
            settings=SolverSettings(
                step_control=StepControlSettings(h_initial=1e-3, h_max=5e-3)
            ),
        )
        result = solver.run(1.0)
        final = result["decay.x"].final()
        assert final == pytest.approx(math.exp(-5.0), abs=1e-3)

    def test_fixed_step_mode(self):
        assembler = single_decay_assembler(rate=2.0)
        solver = LinearisedStateSpaceSolver(
            assembler, settings=SolverSettings(fixed_step=1e-2)
        )
        result = solver.run(0.5)
        assert result.stats.max_step == pytest.approx(1e-2)
        assert result["decay.x"].final() == pytest.approx(math.exp(-1.0), abs=1e-3)

    def test_rk4_integrator_choice(self):
        assembler = single_decay_assembler(rate=5.0)
        solver = LinearisedStateSpaceSolver(
            assembler,
            integrator=RungeKutta4(),
            settings=SolverSettings(fixed_step=1e-2),
        )
        result = solver.run(1.0)
        assert result.metadata["integrator"] == "rk4"
        assert result["decay.x"].final() == pytest.approx(math.exp(-5.0), abs=1e-5)

    def test_driven_rc_reaches_source_level(self):
        assembler, _ = driven_rc_assembler()
        solver = LinearisedStateSpaceSolver(
            assembler,
            settings=SolverSettings(
                step_control=StepControlSettings(h_initial=1e-3, h_max=1e-2)
            ),
        )
        result = solver.run(1.0)  # tau = 0.1 s, so 10 time constants
        assert result["rc.Vc"].final() == pytest.approx(1.0, abs=1e-3)
        # the shared port voltage trace must equal the source level
        assert result["port_V"].final() == pytest.approx(1.0, abs=1e-6)

    def test_custom_x0(self):
        assembler = single_decay_assembler(rate=1.0, x0=1.0)
        solver = LinearisedStateSpaceSolver(
            assembler, settings=SolverSettings(fixed_step=1e-2)
        )
        result = solver.run(0.1, x0=np.array([5.0]))
        assert result["decay.x"].values[0] == pytest.approx(5.0)

    def test_wrong_x0_shape_rejected(self):
        assembler = single_decay_assembler()
        solver = LinearisedStateSpaceSolver(assembler)
        with pytest.raises(ConfigurationError):
            solver.run(0.1, x0=np.zeros(3))

    def test_invalid_time_span(self):
        solver = LinearisedStateSpaceSolver(single_decay_assembler())
        with pytest.raises(ConfigurationError):
            solver.run(0.0)


class TestProbesAndRecording:
    def test_probe_recorded(self):
        assembler = single_decay_assembler(rate=1.0, x0=2.0)
        solver = LinearisedStateSpaceSolver(
            assembler, settings=SolverSettings(fixed_step=1e-2)
        )
        solver.add_probe("doubled", lambda t, x, y: 2.0 * x[0])
        result = solver.run(0.1)
        assert result["doubled"].values[0] == pytest.approx(4.0)

    def test_duplicate_probe_rejected(self):
        solver = LinearisedStateSpaceSolver(single_decay_assembler())
        solver.add_probe("p", lambda t, x, y: 0.0)
        with pytest.raises(ConfigurationError):
            solver.add_probe("p", lambda t, x, y: 0.0)

    def test_record_interval_decimates(self):
        assembler = single_decay_assembler()
        dense = LinearisedStateSpaceSolver(
            assembler, settings=SolverSettings(fixed_step=1e-3)
        ).run(0.1)
        assembler2 = single_decay_assembler()
        sparse = LinearisedStateSpaceSolver(
            assembler2, settings=SolverSettings(fixed_step=1e-3, record_interval=2e-2)
        ).run(0.1)
        assert len(sparse["decay.x"]) < len(dense["decay.x"]) / 3

    def test_state_and_net_value_access(self):
        assembler, _ = driven_rc_assembler()
        solver = LinearisedStateSpaceSolver(
            assembler, settings=SolverSettings(fixed_step=1e-3)
        )
        solver.run(0.05)
        assert solver.state_value("rc", "Vc") > 0.0
        assert solver.net_value("source", "V") == pytest.approx(1.0, abs=1e-9)
        assert solver.current_time == pytest.approx(0.05)


class TestStabilityProtection:
    def test_divergence_raises(self):
        netlist = Netlist()
        netlist.add_block(
            LinearBlock(
                "unstable", np.array([[50.0]]), np.zeros((1, 0)), ["x"], [], x0=[1.0]
            )
        )
        assembler = SystemAssembler(netlist)
        solver = LinearisedStateSpaceSolver(
            assembler,
            settings=SolverSettings(fixed_step=0.1, divergence_limit=1e6),
        )
        with pytest.raises(StabilityError):
            solver.run(10.0)

    def test_lle_monitoring_records_jacobian_drift(self):
        assembler = single_decay_assembler()
        solver = LinearisedStateSpaceSolver(
            assembler,
            settings=SolverSettings(fixed_step=1e-2, monitor_lle=True),
        )
        solver.run(0.2)
        # linear time-invariant system: no drift, nothing flagged
        assert solver.lle_monitor.n_flagged == 0
        assert solver.lle_monitor.max_derivative_mismatch < 1e-9


class SetLevelProcess(DigitalProcess):
    """Digital process that changes the source level at a scheduled time."""

    def __init__(self, time_s, level):
        super().__init__("setter", start_time=time_s)
        self.level = level

    def execute(self, t, analogue):
        analogue.write("level", self.level)
        return None


class TestMixedSignalCoupling:
    def test_digital_event_changes_analogue_model(self):
        assembler, source = driven_rc_assembler()
        kernel = DigitalEventKernel()
        kernel.add_process(SetLevelProcess(0.5, 3.0))
        solver = LinearisedStateSpaceSolver(
            assembler,
            integrator=AdamsBashforth(order=3),
            settings=SolverSettings(
                step_control=StepControlSettings(h_initial=1e-3, h_max=1e-2)
            ),
            digital_kernel=kernel,
        )
        solver.interface.register_control(
            "level", lambda value: source.apply_control("level", value)
        )
        result = solver.run(1.5)
        # before the event the capacitor settles to 1 V, afterwards to 3 V
        assert result["rc.Vc"].at(0.45) == pytest.approx(1.0, abs=0.02)
        assert result["rc.Vc"].final() == pytest.approx(3.0, abs=0.02)
        assert result.metadata["digital_activations"] == 1

    def test_step_never_crosses_event_time(self):
        assembler, source = driven_rc_assembler()
        kernel = DigitalEventKernel()
        kernel.add_process(SetLevelProcess(0.0333, 2.0))
        solver = LinearisedStateSpaceSolver(
            assembler,
            settings=SolverSettings(fixed_step=1e-2),
            digital_kernel=kernel,
        )
        solver.interface.register_control(
            "level", lambda value: source.apply_control("level", value)
        )
        result = solver.run(0.1)
        times = result["rc.Vc"].times
        # one accepted time point lands exactly on the event time
        assert np.min(np.abs(times - 0.0333)) < 1e-9
