"""Setuptools shim.

The project is configured through ``pyproject.toml`` (``src/`` layout);
``pip install -e .`` is the normal install path.  This file exists so that
editable installs still work in offline environments whose setuptools
lacks the ``wheel`` package required by the PEP 660 editable-install path:
there, run ``python setup.py develop`` (it reads the same pyproject
metadata) or simply export ``PYTHONPATH=src``.
"""

from setuptools import setup

setup()
