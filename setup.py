"""Setuptools shim.

The project is configured through ``pyproject.toml``; this file exists so
that editable installs work in offline environments whose setuptools lacks
the ``wheel`` package required by the PEP 517 editable-install path
(``pip install -e . --no-use-pep517`` falls back to this shim).
"""

from setuptools import setup

setup()
