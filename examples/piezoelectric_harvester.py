"""Piezoelectric harvester: a complete topology from a ~20-line spec.

The paper's conclusion claims the linearised state-space technique extends
to piezoelectric microgenerators as-is: "All that is required are the
model equations of each component block."  This example demonstrates that
the declarative system-description layer reduces the remaining work to a
spec: the piezoelectric block drops into the same Dickson-multiplier +
supercapacitor power chain the paper's electromagnetic device uses, and
the same fast solver runs it through the ``Study`` facade.

Run with::

    python examples/piezoelectric_harvester.py            # 0.5 s simulated
    python examples/piezoelectric_harvester.py --smoke    # CI smoke (fast)
"""

import argparse

from repro import Study
from repro.analysis import average_power
from repro.harvester.topologies import piezoelectric_scenario
from repro.io import format_key_values, save_spec


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--smoke", action="store_true", help="short CI run (0.1 s simulated)"
    )
    parser.add_argument(
        "--export-spec",
        metavar="PATH.json",
        help="also write the topology spec to a JSON file",
    )
    args = parser.parse_args()

    scenario = piezoelectric_scenario(duration_s=0.1 if args.smoke else 0.5)
    spec = scenario.spec
    print(f"spec: {spec.name} — {spec.description}")
    print(
        f"blocks: {', '.join(f'{b.name}({b.key})' for b in spec.blocks)}; "
        f"excitation {spec.excitation.frequency_hz:.1f} Hz at "
        f"{spec.excitation.amplitude_ms2:g} m/s^2"
    )
    if args.export_spec:
        print(f"spec written to {save_spec(spec, args.export_spec)}")

    print(f"simulating {scenario.duration_s} s ...")
    run = Study.scenario(scenario).run()

    power = run["generator_power"]
    summary = {
        "solver": run.stats.solver_name,
        "CPU time [s]": f"{run.stats.cpu_time_s:.2f}",
        "accepted steps": run.stats.n_accepted_steps,
        "average harvested power [uW]": f"{average_power(power) * 1e6:.2f}",
        "piezo terminal voltage [V]": f"{run['generator_voltage'].final():.3f}",
        "supercapacitor voltage [mV]": f"{run['storage_voltage'].final() * 1e3:.3f}",
    }
    print(format_key_values(summary, title="piezoelectric harvester summary"))

    final_voltage = run["storage_voltage"].final()
    assert final_voltage > 0.0, "the store did not charge"
    print(f"\nOK — the piezoelectric system charges its store ({final_voltage * 1e3:.3f} mV)")


if __name__ == "__main__":
    main()
