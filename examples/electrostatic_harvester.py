"""Electrostatic harvester: nonlinear block, finite-difference Jacobians.

Second of the two "other microgenerator types" the paper's conclusion
mentions.  The gap-closing electrostatic block deliberately ships without
an analytic ``linearise`` — its terminal relation multiplies state
variables — so this topology exercises the solver's finite-difference
fallback end to end, exactly the "only the model equations are required"
workflow the paper describes.  The spec adds a bias-replenishment path so
energy conversion is sustained rather than a one-shot discharge.

Run with::

    python examples/electrostatic_harvester.py            # 0.5 s simulated
    python examples/electrostatic_harvester.py --smoke    # CI smoke (fast)
"""

import argparse

from repro import Study
from repro.analysis import average_power
from repro.harvester.topologies import electrostatic_scenario
from repro.io import format_key_values


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--smoke", action="store_true", help="short CI run (0.1 s simulated)"
    )
    args = parser.parse_args()

    scenario = electrostatic_scenario(duration_s=0.1 if args.smoke else 0.5)
    spec = scenario.spec
    print(f"spec: {spec.name} — {spec.description}")
    print(
        f"blocks: {', '.join(f'{b.name}({b.key})' for b in spec.blocks)}; "
        f"excitation {spec.excitation.frequency_hz:.1f} Hz at "
        f"{spec.excitation.amplitude_ms2:g} m/s^2"
    )

    print(f"simulating {scenario.duration_s} s ...")
    run = Study.scenario(scenario).run()

    power = run["generator_power"]
    z = run["generator.z"]
    summary = {
        "solver": run.stats.solver_name,
        "CPU time [s]": f"{run.stats.cpu_time_s:.2f}",
        "accepted steps": run.stats.n_accepted_steps,
        "average harvested power [nW]": f"{average_power(power) * 1e9:.1f}",
        "proof-mass travel [um]": (
            f"{z.values.min() * 1e6:.1f} .. {z.values.max() * 1e6:.1f}"
        ),
        "plate terminal voltage [V]": f"{run['generator_voltage'].final():.3f}",
        "supercapacitor voltage [uV]": f"{run['storage_voltage'].final() * 1e6:.2f}",
    }
    print(format_key_values(summary, title="electrostatic harvester summary"))

    assert run["storage_voltage"].final() > 0.0, "the store did not charge"
    print("\nOK — the electrostatic system (finite-difference Jacobians) charges its store")


if __name__ == "__main__":
    main()
