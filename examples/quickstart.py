"""Quickstart: simulate the complete tunable energy harvester in a few lines.

Builds the paper's case-study system (electromagnetic microgenerator,
5-stage Dickson voltage multiplier, supercapacitor + equivalent load,
digital tuning controller) through the ``Study`` facade, runs the proposed
linearised state-space solver for a short window and prints the headline
quantities.

Run with::

    python examples/quickstart.py
    python examples/quickstart.py --smoke   # CI: shorter simulated window
"""

import argparse

from repro import Study, charging_scenario
from repro.analysis import average_power, rms_power
from repro.io import format_key_values


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--smoke", action="store_true", help="short CI run (0.2 s simulated)"
    )
    args = parser.parse_args()

    # The charging scenario: harvester tuned to the 70 Hz ambient vibration,
    # supercapacitor initially empty, no digital activity (open loop).
    scenario = charging_scenario(duration_s=0.2 if args.smoke else 1.0)
    print(f"scenario: {scenario.description}")
    print(f"simulating {scenario.duration_s} s of operation ...")

    run = Study.scenario(scenario).run()

    t_lo, t_hi = (0.1, 0.2) if args.smoke else (0.5, 1.0)
    power = run["generator_power"]
    summary = {
        "solver": run.stats.solver_name,
        "CPU time [s]": f"{run.stats.cpu_time_s:.2f}",
        "accepted steps": run.stats.n_accepted_steps,
        "largest step [ms]": f"{run.stats.max_step * 1e3:.3f}",
        "average generator power [uW]": f"{average_power(power, t_lo, t_hi) * 1e6:.1f}",
        "RMS generator power [uW]": f"{rms_power(power, t_lo, t_hi) * 1e6:.1f}",
        "multiplier output voltage [V]": f"{run['multiplier.V5'].final():.4f}",
        "supercapacitor voltage [V]": f"{run['storage_voltage'].final():.4f}",
    }
    print(format_key_values(summary, title="simulation summary"))

    print()
    print("recorded traces:")
    for name in run.trace_names():
        print(f"  {name}  ({len(run[name])} samples)")


if __name__ == "__main__":
    main()
