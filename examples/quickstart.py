"""Quickstart: simulate the complete tunable energy harvester in a few lines.

Builds the paper's case-study system (electromagnetic microgenerator,
5-stage Dickson voltage multiplier, supercapacitor + equivalent load,
digital tuning controller) through the ``Study`` facade, runs the proposed
linearised state-space solver for a short window and prints the headline
quantities.

Run with::

    python examples/quickstart.py
    python examples/quickstart.py --smoke   # CI: shorter simulated window
"""

import argparse
from pathlib import Path

from repro import Study, charging_scenario, load_experiment
from repro.analysis import average_power, rms_power
from repro.io import format_key_values


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--smoke", action="store_true", help="short CI run (0.2 s simulated)"
    )
    args = parser.parse_args()

    # The charging scenario: harvester tuned to the 70 Hz ambient vibration,
    # supercapacitor initially empty, no digital activity (open loop).
    scenario = charging_scenario(duration_s=0.2 if args.smoke else 1.0)
    print(f"scenario: {scenario.description}")
    print(f"simulating {scenario.duration_s} s of operation ...")

    run = Study.scenario(scenario).run()

    t_lo, t_hi = (0.1, 0.2) if args.smoke else (0.5, 1.0)
    power = run["generator_power"]
    summary = {
        "solver": run.stats.solver_name,
        "CPU time [s]": f"{run.stats.cpu_time_s:.2f}",
        "accepted steps": run.stats.n_accepted_steps,
        "largest step [ms]": f"{run.stats.max_step * 1e3:.3f}",
        "average generator power [uW]": f"{average_power(power, t_lo, t_hi) * 1e6:.1f}",
        "RMS generator power [uW]": f"{rms_power(power, t_lo, t_hi) * 1e6:.1f}",
        "multiplier output voltage [V]": f"{run['multiplier.V5'].final():.4f}",
        "supercapacitor voltage [V]": f"{run['storage_voltage'].final():.4f}",
    }
    print(format_key_values(summary, title="simulation summary"))

    print()
    print("recorded traces:")
    for name in run.trace_names():
        print(f"  {name}  ({len(run[name])} samples)")

    # The whole experiment is also data — the 3-line declarative
    # equivalent of everything above (runnable as
    # `repro run examples/experiments/quickstart.toml`):
    #
    #     spec = load_experiment("examples/experiments/quickstart.toml")
    #     run = Study.from_spec(spec).run()
    #     print(run["storage_voltage"].final())
    #
    spec = load_experiment(
        str(Path(__file__).parent / "experiments" / "quickstart.toml")
    )
    declarative = Study.from_spec(spec).run()
    print()
    print(
        f"declarative twin (content hash {spec.content_hash()[:12]}): "
        f"storage voltage {declarative['storage_voltage'].final():.6g} V "
        f"after {spec.scenario.duration_s} s"
    )
    if scenario.duration_s == spec.scenario.duration_s:
        # in --smoke mode the fluent study above runs the identical
        # experiment; the declarative form must reproduce it exactly
        assert (
            declarative["storage_voltage"].final()
            == run["storage_voltage"].final()
        ), "declarative run diverged from the fluent study"


if __name__ == "__main__":
    main()
