"""Quickstart: simulate the complete tunable energy harvester in a few lines.

Builds the paper's case-study system (electromagnetic microgenerator,
5-stage Dickson voltage multiplier, supercapacitor + equivalent load,
digital tuning controller), runs the proposed linearised state-space
solver for a short window and prints the headline quantities.

Run with::

    python examples/quickstart.py
"""

from repro import charging_scenario, run_proposed
from repro.analysis import average_power, rms_power
from repro.io import format_key_values


def main() -> None:
    # The charging scenario: harvester tuned to the 70 Hz ambient vibration,
    # supercapacitor initially empty, no digital activity (open loop).
    scenario = charging_scenario(duration_s=1.0)
    print(f"scenario: {scenario.description}")
    print(f"simulating {scenario.duration_s} s of operation ...")

    result = run_proposed(scenario)

    power = result["generator_power"]
    summary = {
        "solver": result.stats.solver_name,
        "CPU time [s]": f"{result.stats.cpu_time_s:.2f}",
        "accepted steps": result.stats.n_accepted_steps,
        "largest step [ms]": f"{result.stats.max_step * 1e3:.3f}",
        "average generator power [uW]": f"{average_power(power, 0.5, 1.0) * 1e6:.1f}",
        "RMS generator power [uW]": f"{rms_power(power, 0.5, 1.0) * 1e6:.1f}",
        "multiplier output voltage [V]": f"{result['multiplier.V5'].final():.4f}",
        "supercapacitor voltage [V]": f"{result['storage_voltage'].final():.4f}",
    }
    print(format_key_values(summary, title="simulation summary"))

    print()
    print("recorded traces:")
    for name in result.trace_names():
        print(f"  {name}  ({len(result[name])} samples)")


if __name__ == "__main__":
    main()
