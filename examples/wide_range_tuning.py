"""Scenario 2 of the paper: wide-range tuning (14 Hz shift).

The ambient frequency jumps from 64 Hz (the un-tuned resonance) to 78 Hz —
the maximum tuning range of the practical design.  The actuator has to
travel most of its range, so the tuning phase is long and the supercapacitor
dip is much deeper than in Scenario 1 (the behaviour behind Fig. 9).

Run with::

    python examples/wide_range_tuning.py
"""

from pathlib import Path

import numpy as np

from repro import Study, scenario_2
from repro.io import format_key_values


def main() -> None:
    scenario = scenario_2(duration_s=5.0, shift_time_s=0.5)
    print(f"scenario: {scenario.description}")
    run = Study.scenario(scenario).run()

    storage = run["storage_voltage"]
    dip = float(storage.values[0] - np.min(storage.values))
    summary = {
        "tunings completed": run.metadata.get("n_tunings_completed", 0),
        "resonant frequency at end [Hz]": f"{run['resonant_frequency'].final():.2f}",
        "initial storage voltage [V]": f"{storage.values[0]:.3f}",
        "deepest storage dip [V]": f"{dip:.3f}",
        "final storage voltage [V]": f"{storage.final():.3f}",
        "actuator gap at end [mm]": f"{run['actuator_gap'].final() * 1e3:.2f}",
        "CPU time [s]": f"{run.stats.cpu_time_s:.2f}",
    }
    print(format_key_values(summary, title="Scenario 2 summary (compare with Fig. 9)"))

    print()
    print("controller activity:")
    for event_time, message in run.metadata.get("controller_events", []):
        print(f"  t={event_time:7.3f} s  {message}")

    output = Path(__file__).resolve().parent / "scenario2_traces.csv"
    run.export_csv(
        output,
        trace_names=["storage_voltage", "generator_power", "resonant_frequency"],
        n_samples=4000,
    )
    print(f"\nwaveforms written to {output}")


if __name__ == "__main__":
    main()
