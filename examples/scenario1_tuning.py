"""Scenario 1 of the paper: 1 Hz tuning (70 Hz -> 71 Hz).

Reproduces the closed-loop behaviour behind Fig. 8(a)/8(b): the ambient
vibration frequency shifts by 1 Hz, the microcontroller wakes on its
watchdog timer, detects the mismatch, drives the actuator and re-tunes the
microgenerator.  The script prints the controller's event log, the RMS
generator power before and after the retune (the paper reports 118 uW /
117 uW against a measured 116 uW) and exports the waveforms to CSV for
plotting.

Run with::

    python examples/scenario1_tuning.py
"""

from pathlib import Path

from repro import Study, scenario_1
from repro.analysis import power_before_after
from repro.io import format_key_values


def main() -> None:
    scenario = scenario_1(duration_s=4.0, shift_time_s=0.5)
    print(f"scenario: {scenario.description}")
    run = Study.scenario(scenario).run()

    print()
    print("microcontroller event log (Fig. 7 behaviour):")
    for event_time, message in run.metadata.get("controller_events", []):
        print(f"  t={event_time:7.3f} s  {message}")

    # RMS generator power before the frequency shift and after the retune
    before, after = power_before_after(
        run["generator_power"],
        event_time=0.5,
        window_s=0.3,
        settle_s=2.0,
    )
    summary = {
        "tunings completed": run.metadata.get("n_tunings_completed", 0),
        "resonant frequency at end [Hz]": f"{run['resonant_frequency'].final():.2f}",
        "RMS power tuned at 70 Hz [uW]": f"{before * 1e6:.1f}",
        "RMS power tuned at 71 Hz [uW]": f"{after * 1e6:.1f}",
        "supercapacitor voltage at end [V]": f"{run['storage_voltage'].final():.3f}",
        "CPU time [s]": f"{run.stats.cpu_time_s:.2f}",
    }
    print()
    print(format_key_values(summary, title="Scenario 1 summary (compare with Fig. 8)"))

    output = Path(__file__).resolve().parent / "scenario1_traces.csv"
    run.export_csv(
        output,
        trace_names=[
            "generator_power",
            "storage_voltage",
            "resonant_frequency",
            "ambient_frequency",
            "load_resistance",
        ],
        n_samples=4000,
    )
    print(f"\nwaveforms written to {output}")


if __name__ == "__main__":
    main()
