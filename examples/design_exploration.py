"""Design exploration: the use case that motivates fast simulation.

The paper's conclusion states that the point of accelerating harvester
simulation is "an automated design approach by which the best topology and
optimal parameters of energy harvester are obtained iteratively using
multiple simulations".  This example runs such a loop: it sweeps the
ambient frequency around the tuned resonance to map the power-vs-frequency
curve (the classic resonance peak that motivates tunable harvesters) and
then sweeps the excitation amplitude to rank operating conditions by
harvested energy — dozens of complete-system simulations that finish in
minutes thanks to the linearised state-space solver.

Run with::

    python examples/design_exploration.py
"""

from repro import charging_scenario
from repro.analysis import ParameterSweep, average_power_metric, sweep_excitation_frequency
from repro.io import format_table


def resonance_curve() -> None:
    """Power versus ambient frequency with the generator tuned to 70 Hz."""
    scenario = charging_scenario(duration_s=0.4)
    frequencies = [64.0, 67.0, 69.0, 70.0, 71.0, 73.0, 76.0]
    result = sweep_excitation_frequency(scenario, frequencies)
    rows = [
        [f"{point.parameters['excitation_frequency_hz']:.0f}", f"{point.score * 1e6:.1f}"]
        for point in sorted(result.points, key=lambda p: p.parameters["excitation_frequency_hz"])
    ]
    print(
        format_table(
            ["ambient frequency [Hz]", "average generator power [uW]"],
            rows,
            title="resonance curve of the 70 Hz-tuned harvester",
        )
    )
    best = result.best()
    print(
        f"\nbest operating point: {best.parameters['excitation_frequency_hz']:.0f} Hz "
        f"({best.score * 1e6:.1f} uW) — the resonance peak the tuning mechanism chases\n"
    )


def amplitude_sweep() -> None:
    """Rank excitation amplitudes by the energy harvested in the window."""
    scenario = charging_scenario(duration_s=0.3)
    sweep = ParameterSweep(
        scenario,
        {"excitation_amplitude_ms2": [0.3, 0.59, 0.9]},
        metric=average_power_metric,
        metric_name="average_power_W",
    )
    result = sweep.run()
    print(result.format())


def main() -> None:
    resonance_curve()
    amplitude_sweep()


if __name__ == "__main__":
    main()
