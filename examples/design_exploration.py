"""Design exploration: the use case that motivates fast simulation.

The paper's conclusion states that the point of accelerating harvester
simulation is "an automated design approach by which the best topology and
optimal parameters of energy harvester are obtained iteratively using
multiple simulations".  This example runs such a loop through the
``Study`` facade: it sweeps the ambient frequency around the tuned
resonance to map the power-vs-frequency curve (the classic resonance peak
that motivates tunable harvesters) and then sweeps the excitation
amplitude to rank operating conditions by harvested energy — dozens of
complete-system simulations that finish in minutes thanks to the
linearised state-space solver.

The final sections scale the loop up: a 2-D design grid evaluated by
worker processes (live best-so-far progress, resumable checkpoint file,
amortised-relinearisation fast profile via ``RunOptions.fast()``), then
the same grid on the **batched lane-parallel backend**
(``RunOptions.batched()``), which marches all same-topology candidates in
lock-step through stacked arrays — the fastest way to burn through a
controller-free design grid.

Run with::

    python examples/design_exploration.py          # full tour
    python examples/design_exploration.py --smoke  # CI: batched grid only
"""

import argparse
from pathlib import Path

from repro import RunOptions, Study, charging_scenario, sweep_excitation_frequency
from repro.analysis import average_power_metric
from repro.io import format_sweep_progress, format_table


def resonance_curve() -> None:
    """Power versus ambient frequency with the generator tuned to 70 Hz."""
    scenario = charging_scenario(duration_s=0.4)
    frequencies = [64.0, 67.0, 69.0, 70.0, 71.0, 73.0, 76.0]
    result = sweep_excitation_frequency(scenario, frequencies)
    rows = [
        [f"{point.parameters['excitation_frequency_hz']:.0f}", f"{point.score * 1e6:.1f}"]
        for point in sorted(result.points, key=lambda p: p.parameters["excitation_frequency_hz"])
    ]
    print(
        format_table(
            ["ambient frequency [Hz]", "average generator power [uW]"],
            rows,
            title="resonance curve of the 70 Hz-tuned harvester",
        )
    )
    best = result.best()
    print(
        f"\nbest operating point: {best.parameters['excitation_frequency_hz']:.0f} Hz "
        f"({best.score * 1e6:.1f} uW) — the resonance peak the tuning mechanism chases\n"
    )


def amplitude_sweep() -> None:
    """Rank excitation amplitudes by the energy harvested in the window."""
    result = (
        Study.scenario(charging_scenario(duration_s=0.3))
        .sweep(
            {"excitation_amplitude_ms2": [0.3, 0.59, 0.9]},
            metric=average_power_metric,
            metric_name="average_power_W",
        )
        .run()
    )
    print(result.format())


def parallel_design_grid() -> None:
    """2-D design grid on the parallel sweep engine (the scaled-up loop).

    Every finished candidate is appended to a checkpoint CSV (in the
    current directory), so rerunning after an interruption resumes instead
    of restarting; the fast solver profile (``RunOptions.fast()``) trades
    a documented 10 % (typically few-percent) score tolerance for a 2-3x
    per-candidate speed-up.
    """
    checkpoint = Path("design_grid_checkpoint.csv")
    options = RunOptions.fast(
        relinearise_interval=4,
        n_workers=4,
        checkpoint_path=str(checkpoint),
        progress=lambda done, total, best: print(
            format_sweep_progress(done, total, best.score, best.parameters)
        ),
    )
    result = (
        Study.scenario(charging_scenario(duration_s=0.2))
        .options(options)
        .sweep(
            {
                "excitation_frequency_hz": [66.0, 69.0, 72.0, 75.0],
                "excitation_amplitude_ms2": [0.3, 0.45, 0.59, 0.75],
            },
            metric=average_power_metric,
            metric_name="average_power_W",
        )
        .run()
    )
    print()
    print(result.format())
    info = result.engine_info
    print(
        f"\n{info.n_evaluated} evaluated / {info.n_resumed} resumed from "
        f"{checkpoint} on {info.n_workers} workers "
        f"(parallel={info.parallel}); delete the checkpoint to re-run fresh\n"
    )


def batched_design_grid(smoke: bool = False) -> None:
    """The same design grid on the batched lane-parallel backend.

    All candidates share the charging topology and carry no digital
    events, so ``RunOptions.batched()`` marches them as lanes of stacked
    ``(B, n, n)`` arrays — one linearise/eliminate/march NumPy sweep per
    step for the whole grid.  With adaptive stepping the lanes share the
    most conservative step (documented 10 % score tolerance, measured far
    tighter); with ``fixed_step`` settings every lane is byte-identical to
    its serial run.
    """
    if smoke:
        grid = {
            "excitation_frequency_hz": [69.0, 72.0],
            "excitation_amplitude_ms2": [0.45, 0.59],
        }
        scenario = charging_scenario(duration_s=0.05)
    else:
        grid = {
            "excitation_frequency_hz": [66.0, 69.0, 72.0, 75.0],
            "excitation_amplitude_ms2": [0.3, 0.45, 0.59, 0.75],
        }
        scenario = charging_scenario(duration_s=0.2)
    result = (
        Study.scenario(scenario)
        .options(RunOptions.batched())
        .sweep(grid, metric=average_power_metric, metric_name="average_power_W")
        .run()
    )
    print(result.format())
    info = result.engine_info
    print(
        f"\nbatched backend: {info.n_batched_candidates}/{info.n_candidates} "
        f"candidates marched batched in {info.n_lane_blocks} lane block(s), "
        f"{info.n_batch_fallbacks} scalar fallback(s)\n"
    )
    assert info.backend == "batched" and info.n_batched_candidates >= 1


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="CI smoke: run only a tiny batched design grid",
    )
    args = parser.parse_args()
    if args.smoke:
        batched_design_grid(smoke=True)
        return
    resonance_curve()
    amplitude_sweep()
    parallel_design_grid()
    batched_design_grid()


if __name__ == "__main__":
    main()
