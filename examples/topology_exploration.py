"""Topology exploration: sweep the *generator technology*, not a number.

The paper motivates fast simulation with "development of an automated
design approach by which the best topology and optimal parameters of
energy harvester are obtained iteratively using multiple simulations".
With the declarative spec layer the sweep grid can carry a **topology
axis**: the ``generator`` axis values below are whole
:class:`~repro.core.spec.BlockSpec` objects (electromagnetic /
piezoelectric / electrostatic, each tuned to the ambient frequency), so
every grid point is a different *circuit*, not just a different
coefficient.  The sweep engine reuses one assembly structure per distinct
topology via the spec's structural hash.

Documented result (full grid: 9 candidates, 0.25 s each, 70 Hz ambient):
the **electromagnetic** paper device wins at the highest excitation
amplitude (~27 uW average over the startup window), the piezoelectric
cantilever is a close second (~16 uW), and the electrostatic harvester
saturates around 0.6 uW regardless of amplitude (its bias-replenishment
path, not the mechanics, limits the throughput) — a plausible ranking for
centimetre-scale devices and the reason the paper's case study is
electromagnetic.

Run with::

    python examples/topology_exploration.py            # full grid
    python examples/topology_exploration.py --smoke    # CI smoke grid
"""

import argparse

from repro import RunOptions, Study, generator_variants
from repro.analysis import average_power_metric, format_sweep_value
from repro.harvester.topologies import piezoelectric_scenario

AMBIENT_HZ = 70.0


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="tiny CI grid (3 candidates, 0.05 s each) on a single worker",
    )
    args = parser.parse_args()

    variants = generator_variants(AMBIENT_HZ)
    duration_s = 0.05 if args.smoke else 0.25
    amplitudes = [0.59] if args.smoke else [0.25, 0.59, 1.0]

    base = piezoelectric_scenario(
        duration_s=duration_s, excitation_frequency_hz=AMBIENT_HZ
    )
    n_workers = 1 if args.smoke else 3
    print(
        f"sweeping {3 * len(amplitudes)} candidates "
        f"(3 topologies x {len(amplitudes)} amplitudes, "
        f"{duration_s:g} s each, {n_workers} worker(s)) ..."
    )
    result = (
        Study.scenario(base)
        .options(RunOptions(n_workers=n_workers))
        .sweep(
            {
                "generator": [
                    variants["electromagnetic"],
                    variants["piezoelectric"],
                    variants["electrostatic"],
                ],
                "excitation_amplitude_ms2": amplitudes,
            },
            metric=average_power_metric,
            metric_name="average_power_W",
        )
        .run()
    )

    print()
    print(result.format())
    best = result.best()
    print(
        "\nwinner: "
        + ", ".join(
            f"{k}={format_sweep_value(v)}" for k, v in best.parameters.items()
        )
        + f"  ({best.score * 1e6:.3f} uW average)"
    )
    assert best.score > 0.0


if __name__ == "__main__":
    main()
