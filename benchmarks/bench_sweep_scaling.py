"""Sweep-engine scaling: parallel design exploration vs the serial loop.

The paper's motivation for a fast non-iterative solver is an "automated
design approach … using multiple simulations"; this benchmark measures
that workload end to end.  A 16-candidate design grid (ambient frequency x
excitation amplitude of the supercapacitor-charging scenario) is evaluated
two ways:

* **serial loop** — ``Study`` with default (exact) options: one
  candidate at a time, exact every-step relinearisation — byte-identical
  to the historical ``ParameterSweep.run()`` path;
* **parallel engine** — ``RunOptions.fast(n_workers=4)``: 4 worker
  processes, per-worker assembly-structure reuse and the
  amortised-relinearisation profile (``relinearise_interval=4``).

Pass criteria (asserted):

* the engine is at least 2x faster wall-clock than the serial loop;
* every candidate score matches the exact serial score within the
  **documented tolerance of 10 % relative** (the amortised profile holds
  each linearisation over up to 4 explicit steps; measured deviations on
  this grid are typically below 7 %) and the best candidate is the same.

A second comparison measures the **batched lane-parallel backend**
(``backend="batched"``): a 64-candidate same-topology grid marched as
lanes of stacked ``(B, n, n)`` arrays (one linearise/eliminate/march
NumPy sweep per step for a whole lane block, composed with the same 4
worker processes).  Asserted: at least 3x wall-clock over the 4-worker
process engine, scores within the documented 10 % tolerance and the same
winner.  Writes ``BENCH_batch.json``.  The same grid additionally runs
with the **compiled lane core** (``compiled="auto"``,
:mod:`repro.core.kernels`) as a third leg, so ``BENCH_sweep.json``
tracks all four execution paths — serial / engine / batched /
compiled — in one file.

On a single-core host the speed-up comes from the amortised profile and
the lane vectorisation; on a multi-core host process parallelism
multiplies both further.

Run via pytest (writes ``benchmarks/results/sweep_scaling.txt`` and
``benchmarks/results/batch_scaling.txt``)::

    PYTHONPATH=src python -m pytest benchmarks/bench_sweep_scaling.py -q

or directly, e.g. the CI smoke grids::

    PYTHONPATH=src python benchmarks/bench_sweep_scaling.py --quick

Both entry points additionally write ``BENCH_sweep.json`` and
``BENCH_batch.json`` so the perf trajectory stays machine-readable across
PRs.
"""

import argparse
import json
import time
from pathlib import Path

from repro import RunOptions, Study
from repro.analysis.sweep import average_power_metric
from repro.harvester.scenarios import charging_scenario
from repro.io.report import format_table

JSON_PATH = Path("BENCH_sweep.json")
BATCH_JSON_PATH = Path("BENCH_batch.json")

#: documented score tolerance of the amortised-relinearisation profile
#: (and of the batched shared-step march, which is measurably tighter)
SCORE_TOLERANCE_REL = 0.10
#: required wall-clock advantage of the engine over the serial loop
MIN_SPEEDUP = 2.0
#: required wall-clock advantage of the batched backend over the engine
MIN_BATCH_SPEEDUP = 3.0

WORKERS = 4
RELINEARISE_INTERVAL = 4

FULL_GRID = {
    "excitation_frequency_hz": [66.0, 69.0, 72.0, 75.0],
    "excitation_amplitude_ms2": [0.3, 0.45, 0.59, 0.75],
}
FULL_DURATION_S = 0.2

#: 64-candidate same-topology grid for the batched-backend comparison
BATCH_GRID = {
    "excitation_frequency_hz": [64.0, 66.0, 68.0, 69.0, 70.0, 72.0, 74.0, 75.0],
    "excitation_amplitude_ms2": [0.3, 0.4, 0.45, 0.5, 0.55, 0.59, 0.65, 0.75],
}
BATCH_DURATION_S = 0.2

#: tiny smoke grid for CI: exercises the full parallel/fast-profile path
#: in seconds without asserting the speed-up (CI runners are too noisy)
QUICK_GRID = {
    "excitation_frequency_hz": [69.0, 72.0],
    "excitation_amplitude_ms2": [0.45, 0.59],
}
QUICK_DURATION_S = 0.05


def build_study(grid, duration_s):
    scenario = charging_scenario(duration_s=duration_s)
    return Study.scenario(scenario).sweep(
        grid,
        metric=average_power_metric,
        metric_name="average_power_W",
    )


def grid_size(grid):
    n = 1
    for values in grid.values():
        n *= len(values)
    return n


def _write_json(n_candidates, duration_s, t_serial, t_engine, speedup, max_dev, quick):
    """Machine-readable record of the run (perf trajectory across PRs)."""
    JSON_PATH.write_text(
        json.dumps(
            {
                "benchmark": "sweep_scaling",
                "quick": quick,
                "n_candidates": n_candidates,
                "duration_s_per_candidate": duration_s,
                "workers": WORKERS,
                "relinearise_interval": RELINEARISE_INTERVAL,
                "t_serial_s": t_serial,
                "t_engine_s": t_engine,
                "speedup": speedup,
                "max_rel_score_deviation": max_dev,
                "score_tolerance_rel": SCORE_TOLERANCE_REL,
            },
            indent=2,
        )
        + "\n"
    )


def run_comparison(grid, duration_s, *, assert_speedup=True, quick=False):
    """Run serial vs engine, return (report_text, speedup, max_deviation)."""
    study = build_study(grid, duration_s)
    n_candidates = grid_size(grid)

    t0 = time.perf_counter()
    serial = study.run()
    t_serial = time.perf_counter() - t0

    t0 = time.perf_counter()
    engine = study.options(
        RunOptions.fast(
            relinearise_interval=RELINEARISE_INTERVAL, n_workers=WORKERS
        )
    ).run()
    t_engine = time.perf_counter() - t0

    speedup = t_serial / t_engine
    deviations = [
        abs(fast.score - exact.score) / abs(exact.score)
        for fast, exact in zip(engine.points, serial.points)
    ]
    max_deviation = max(deviations)

    rows = [
        ["serial loop (exact)", f"{t_serial:.2f}", "1", "1.00", "0 (reference)"],
        [
            f"engine ({WORKERS} workers, hold {RELINEARISE_INTERVAL})",
            f"{t_engine:.2f}",
            str(WORKERS),
            f"{speedup:.2f}",
            f"{max_deviation:.2e}",
        ],
    ]
    report = format_table(
        ["path", "wall [s]", "workers", "speedup", "max score dev (rel)"],
        rows,
        title=(
            f"sweep scaling — {n_candidates}-candidate grid, "
            f"{duration_s:g} s simulated per candidate"
        ),
    )
    report += (
        f"\nbest candidate (serial): {dict(serial.best().parameters)}"
        f"\nbest candidate (engine): {dict(engine.best().parameters)}"
    )
    _write_json(
        n_candidates, duration_s, t_serial, t_engine, speedup, max_deviation, quick
    )

    assert serial.best().parameters == engine.best().parameters, (
        "the fast profile changed the winning candidate"
    )
    assert max_deviation <= SCORE_TOLERANCE_REL, (
        f"score deviation {max_deviation:.3e} exceeds the documented "
        f"tolerance {SCORE_TOLERANCE_REL}"
    )
    if assert_speedup:
        assert speedup >= MIN_SPEEDUP, (
            f"engine speedup {speedup:.2f}x below the required {MIN_SPEEDUP}x"
        )
    return report, speedup, max_deviation


def _write_batch_json(
    n_candidates,
    duration_s,
    t_engine,
    t_batched,
    speedup,
    max_dev,
    quick,
    batched_workers,
    t_compiled,
    compiled_speedup,
    compiled_max_dev,
    compiled_backend,
):
    """Machine-readable record of the batched-backend comparison."""
    BATCH_JSON_PATH.write_text(
        json.dumps(
            {
                "benchmark": "batch_scaling",
                "quick": quick,
                "n_candidates": n_candidates,
                "duration_s_per_candidate": duration_s,
                "engine_workers": WORKERS,
                "batched_workers": batched_workers,
                "relinearise_interval": RELINEARISE_INTERVAL,
                "t_process_engine_s": t_engine,
                "t_batched_s": t_batched,
                "speedup_vs_process_engine": speedup,
                "max_rel_score_deviation": max_dev,
                "t_compiled_s": t_compiled,
                "compiled_backend": compiled_backend,
                "compiled_speedup_vs_process_engine": compiled_speedup,
                "compiled_max_rel_score_deviation": compiled_max_dev,
                "score_tolerance_rel": SCORE_TOLERANCE_REL,
            },
            indent=2,
        )
        + "\n"
    )
    # merge the batched/compiled columns into BENCH_sweep.json so one file
    # tracks every execution path: serial / engine / batched / compiled
    if JSON_PATH.exists():
        merged = json.loads(JSON_PATH.read_text())
        merged["t_batched_s"] = t_batched
        merged["batched_speedup_vs_engine"] = speedup
        merged["t_compiled_s"] = t_compiled
        merged["compiled_backend"] = compiled_backend
        merged["compiled_speedup_vs_engine"] = compiled_speedup
        JSON_PATH.write_text(json.dumps(merged, indent=2) + "\n")


def run_batched_comparison(grid, duration_s, *, assert_speedup=True, quick=False):
    """Batched lane-parallel backend vs the 4-worker process engine.

    Returns ``(report_text, speedup, max_deviation)``; both paths run the
    same amortised-relinearisation profile, so the comparison isolates the
    lane vectorisation itself.  The quick smoke grid is too small to split
    across workers (one-lane blocks degrade to the scalar path), so quick
    mode marches it as a single lane block to actually exercise the
    batched loop.
    """
    study = build_study(grid, duration_s)
    n_candidates = grid_size(grid)
    batched_workers = 1 if quick else WORKERS

    t0 = time.perf_counter()
    engine = study.options(
        RunOptions.fast(
            relinearise_interval=RELINEARISE_INTERVAL, n_workers=WORKERS
        )
    ).run()
    t_engine = time.perf_counter() - t0

    t0 = time.perf_counter()
    batched = study.options(
        RunOptions.batched(
            lane_width=n_candidates if quick else None,
            n_workers=batched_workers,
            relinearise_interval=RELINEARISE_INTERVAL,
        )
    ).run()
    t_batched = time.perf_counter() - t0

    from repro.core.kernels import resolve_compiled

    compiled_backend = resolve_compiled("auto")
    t0 = time.perf_counter()
    compiled = study.options(
        RunOptions.batched(
            lane_width=n_candidates if quick else None,
            n_workers=batched_workers,
            relinearise_interval=RELINEARISE_INTERVAL,
            compiled="auto",
        )
    ).run()
    t_compiled = time.perf_counter() - t0
    # runtime truth, not the planning count: every candidate's score must
    # actually have come out of a batched lock-step march
    assert batched.engine_info.n_batched_candidates == n_candidates, (
        "the batched comparison did not exercise the batched path "
        f"({batched.engine_info.n_batched_candidates}/{n_candidates} "
        "candidates batched)"
    )

    speedup = t_engine / t_batched
    deviations = [
        abs(fast.score - ref.score) / abs(ref.score)
        for fast, ref in zip(batched.points, engine.points)
    ]
    max_deviation = max(deviations)
    compiled_speedup = t_engine / t_compiled
    compiled_max_dev = max(
        abs(fast.score - ref.score) / abs(ref.score)
        for fast, ref in zip(compiled.points, engine.points)
    )

    rows = [
        [
            f"process engine ({WORKERS} workers, hold {RELINEARISE_INTERVAL})",
            f"{t_engine:.2f}",
            "1.00",
            "0 (reference)",
        ],
        [
            f"batched backend ({batched_workers} worker(s), lane blocks)",
            f"{t_batched:.2f}",
            f"{speedup:.2f}",
            f"{max_deviation:.2e}",
        ],
        [
            f"compiled lane core ({compiled_backend} kernel)",
            f"{t_compiled:.2f}",
            f"{compiled_speedup:.2f}",
            f"{compiled_max_dev:.2e}",
        ],
    ]
    report = format_table(
        ["path", "wall [s]", "speedup", "max score dev (rel)"],
        rows,
        title=(
            f"batched lane-parallel backend — {n_candidates}-candidate "
            f"same-topology grid, {duration_s:g} s simulated per candidate"
        ),
    )
    report += (
        f"\nbest candidate (engine):  {dict(engine.best().parameters)}"
        f"\nbest candidate (batched): {dict(batched.best().parameters)}"
    )
    _write_batch_json(
        n_candidates,
        duration_s,
        t_engine,
        t_batched,
        speedup,
        max_deviation,
        quick,
        batched_workers,
        t_compiled,
        compiled_speedup,
        compiled_max_dev,
        compiled_backend,
    )

    assert engine.best().parameters == batched.best().parameters, (
        "the batched backend changed the winning candidate"
    )
    assert max_deviation <= SCORE_TOLERANCE_REL, (
        f"batched score deviation {max_deviation:.3e} exceeds the documented "
        f"tolerance {SCORE_TOLERANCE_REL}"
    )
    assert compiled_max_dev <= SCORE_TOLERANCE_REL, (
        f"compiled score deviation {compiled_max_dev:.3e} exceeds the "
        f"documented tolerance {SCORE_TOLERANCE_REL}"
    )
    if assert_speedup:
        assert speedup >= MIN_BATCH_SPEEDUP, (
            f"batched speedup {speedup:.2f}x below the required "
            f"{MIN_BATCH_SPEEDUP}x over the process engine"
        )
    return report, speedup, max_deviation


def test_sweep_engine_scaling(report_writer):
    report, speedup, max_dev = run_comparison(FULL_GRID, FULL_DURATION_S)
    report_writer("sweep_scaling", report)


def test_batched_backend_scaling(report_writer):
    report, speedup, max_dev = run_batched_comparison(BATCH_GRID, BATCH_DURATION_S)
    report_writer("batch_scaling", report)


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--quick",
        action="store_true",
        help="tiny smoke grids (CI): check correctness, skip the speed-up assertions",
    )
    args = parser.parse_args()
    if args.quick:
        report, speedup, max_dev = run_comparison(
            QUICK_GRID, QUICK_DURATION_S, assert_speedup=False, quick=True
        )
        batch_report, batch_speedup, batch_dev = run_batched_comparison(
            QUICK_GRID, QUICK_DURATION_S, assert_speedup=False, quick=True
        )
    else:
        report, speedup, max_dev = run_comparison(FULL_GRID, FULL_DURATION_S)
        batch_report, batch_speedup, batch_dev = run_batched_comparison(
            BATCH_GRID, BATCH_DURATION_S
        )
    print(report)
    print(f"\nspeedup {speedup:.2f}x, max relative score deviation {max_dev:.2e}")
    print(f"written: {JSON_PATH}")
    print()
    print(batch_report)
    print(
        f"\nbatched speedup {batch_speedup:.2f}x over the process engine, "
        f"max relative score deviation {batch_dev:.2e}"
    )
    print(f"written: {BATCH_JSON_PATH}")


if __name__ == "__main__":
    main()
