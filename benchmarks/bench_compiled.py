"""Compiled lane core: kernel march vs the interpreted batched loop.

The batched backend's remaining per-step cost is pure Python dispatch:
one interpreter iteration (refresh checks, record checks, stats
bookkeeping) per shared step, regardless of how wide the lane stack is.
The compiled lane core (:mod:`repro.core.kernels`) replaces runs of held
steps with one kernel call that advances all ``(B, n)`` lanes ``K``
steps at a time, ``K = min(steps_until_refresh, steps_until_record,
steps_until_earliest_t_end)``.

This benchmark marches B=256 supercapacitor-charging lanes (ambient
frequency swept across the tuning range) 0.5 s at a fixed 1e-4 step
under the amortised-relinearisation profile and asserts:

* **speedup**: the compiled march is at least 3x faster wall-clock than
  the interpreted batched loop on the same lane stack;
* **fixed-step byte-identity**: every trace of every lane is bit-equal
  between ``compiled="off"`` and the compiled run;
* **adaptive tolerance**: on an adaptive shared-step leg the per-lane
  final storage voltages deviate at most 10 % relative from the
  interpreted batched run (the backend's documented tolerance).

A record-path micro-bench additionally times the buffered row-recorder
mechanism (geometrically grown ``(cap, B, n)`` arrays materialised into
traces once per lane) against the naive per-sample Python appends it
replaced.

Run directly (writes ``BENCH_compiled.json``)::

    PYTHONPATH=src python benchmarks/bench_compiled.py            # full
    PYTHONPATH=src python benchmarks/bench_compiled.py --quick    # CI smoke

Quick mode shrinks the lane stack and still asserts identity and the
adaptive tolerance, but skips the speed-up assertion (CI runners are too
noisy for wall-clock gates).
"""

import argparse
import json
import time
from dataclasses import replace
from pathlib import Path

import numpy as np

from repro.core.batch import BatchedSolver
from repro.core.kernels import resolve_compiled
from repro.core.results import Trace
from repro.harvester.scenarios import (
    charging_scenario,
    prepare_assembly,
    scenario_solver_settings,
)
from repro.io.report import format_table

JSON_PATH = Path("BENCH_compiled.json")

#: required wall-clock advantage of the compiled march over the
#: interpreted batched loop (full mode only)
MIN_SPEEDUP = 3.0
#: documented adaptive shared-step score tolerance of the batched backend
SCORE_TOLERANCE_REL = 0.10

#: full-mode workload: wide enough that Python dispatch dominates the
#: interpreted loop, long enough holds that the kernel gets real bursts
FULL_B = 256
FULL_DURATION_S = 0.5
FIXED_STEP = 1e-4
RELINEARISE_INTERVAL = 128
RECORD_INTERVAL = 2e-2

QUICK_B = 16
QUICK_DURATION_S = 0.05

#: adaptive-leg lane count (adaptive marches are slower per step; the
#: tolerance check does not need the full stack)
ADAPTIVE_B = 32
ADAPTIVE_DURATION_S = 0.1


def build_lanes(b, duration_s):
    """Same-topology charging lanes across the magnetic tuning range.

    66 Hz is the floor: the initial tuned frequency cannot sit below the
    un-tuned resonance (magnetic tuning only raises it).
    """
    return [
        charging_scenario(duration_s=duration_s, frequency_hz=float(f))
        for f in np.linspace(66.0, 80.0, b)
    ]


def run_batch(scenarios, settings_list, compiled):
    structure = prepare_assembly(scenarios[0])
    harvesters = [
        s.build_harvester(assembly_structure=structure) for s in scenarios
    ]
    solver = BatchedSolver(
        [h.assembler for h in harvesters],
        settings=settings_list,
        compiled=compiled,
    )
    for i, harvester in enumerate(harvesters):
        harvester._wire(solver.lane_wiring(i))
    return solver.run([s.duration_s for s in scenarios])


def assert_byte_identical(reference, result):
    assert set(reference.failures) == set(result.failures)
    for i, (ref, got) in enumerate(zip(reference.results, result.results)):
        assert (ref is None) == (got is None)
        if ref is None:
            continue
        assert sorted(ref.traces) == sorted(got.traces)
        for name in ref.traces:
            assert np.array_equal(ref[name].times, got[name].times), (
                f"lane {i} {name}: compiled trace times differ"
            )
            assert np.array_equal(ref[name].values, got[name].values), (
                f"lane {i} {name}: compiled trace values differ"
            )


def fixed_step_comparison(b, duration_s, backend):
    """Interpreted vs compiled on one fixed-step lane stack."""
    scenarios = build_lanes(b, duration_s)
    settings_list = [
        replace(
            scenario_solver_settings(s),
            fixed_step=FIXED_STEP,
            relinearise_interval=RELINEARISE_INTERVAL,
            record_interval=RECORD_INTERVAL,
        )
        for s in scenarios
    ]

    t0 = time.perf_counter()
    interpreted = run_batch(scenarios, settings_list, "off")
    t_off = time.perf_counter() - t0

    t0 = time.perf_counter()
    compiled = run_batch(scenarios, settings_list, backend)
    t_compiled = time.perf_counter() - t0

    assert not interpreted.failures
    assert_byte_identical(interpreted, compiled)
    return t_off, t_compiled


def adaptive_deviation(b, duration_s, backend):
    """Max relative final-voltage deviation on an adaptive shared-step leg."""
    scenarios = build_lanes(b, duration_s)
    settings_list = [
        replace(
            scenario_solver_settings(s),
            relinearise_interval=RELINEARISE_INTERVAL,
            record_interval=RECORD_INTERVAL,
        )
        for s in scenarios
    ]
    interpreted = run_batch(scenarios, settings_list, "off")
    compiled = run_batch(scenarios, settings_list, backend)
    assert not interpreted.failures and not compiled.failures
    deviations = [
        abs(
            got["storage_voltage"].final() - ref["storage_voltage"].final()
        )
        / abs(ref["storage_voltage"].final())
        for ref, got in zip(interpreted.results, compiled.results)
    ]
    return max(deviations)


def record_path_microbench(b=256, events=400, n_signals=6):
    """Buffered row-recorder mechanism vs naive per-sample appends.

    Returns ``(t_naive_s, t_buffered_s)`` for recording ``events``
    samples of ``n_signals`` quantities across ``b`` lanes: the naive
    path appends into per-lane :class:`Trace` objects sample by sample
    (the interpreted loop's mechanism), the buffered path fills
    geometrically grown rows and materialises traces once per lane (the
    compiled loop's mechanism).
    """
    times = np.arange(events) * 1e-3
    values = np.sin(times[:, None, None] + np.arange(b * n_signals).reshape(b, n_signals))

    t0 = time.perf_counter()
    naive = [
        [Trace(f"s{j}") for j in range(n_signals)] for _ in range(b)
    ]
    for e in range(events):
        t = float(times[e])
        frame = values[e]
        for lane in range(b):
            lane_traces = naive[lane]
            lane_frame = frame[lane]
            for j in range(n_signals):
                lane_traces[j].append(t, lane_frame[j])
    t_naive = time.perf_counter() - t0

    t0 = time.perf_counter()
    cap, n = 64, 0
    buf = np.empty((cap, b, n_signals))
    buf_times = np.empty(cap)
    for e in range(events):
        if n == cap:
            cap *= 2
            grown = np.empty((cap, b, n_signals))
            grown[:n] = buf
            buf = grown
            grown_times = np.empty(cap)
            grown_times[:n] = buf_times
            buf_times = grown_times
        buf[n] = values[e]
        buf_times[n] = times[e]
        n += 1
    buffered = [
        [
            Trace.from_samples(f"s{j}", buf_times[:n], buf[:n, lane, j])
            for j in range(n_signals)
        ]
        for lane in range(b)
    ]
    t_buffered = time.perf_counter() - t0

    for lane in range(b):
        for j in range(n_signals):
            assert np.array_equal(
                naive[lane][j].values, buffered[lane][j].values
            )
    return t_naive, t_buffered


def run(quick=False):
    backend = resolve_compiled("auto")
    b = QUICK_B if quick else FULL_B
    duration_s = QUICK_DURATION_S if quick else FULL_DURATION_S

    t_off, t_compiled = fixed_step_comparison(b, duration_s, backend)
    speedup = t_off / t_compiled

    adaptive_b = min(ADAPTIVE_B, b)
    adaptive_duration = QUICK_DURATION_S if quick else ADAPTIVE_DURATION_S
    max_dev = adaptive_deviation(adaptive_b, adaptive_duration, backend)
    assert max_dev <= SCORE_TOLERANCE_REL, (
        f"adaptive compiled deviation {max_dev:.3e} exceeds the documented "
        f"tolerance {SCORE_TOLERANCE_REL}"
    )

    t_naive, t_buffered = record_path_microbench(b=b)
    record_ratio = t_naive / t_buffered

    rows = [
        ["interpreted batched loop", f"{t_off:.2f}", "1.00", "reference"],
        [
            f"compiled lane core ({backend})",
            f"{t_compiled:.2f}",
            f"{speedup:.2f}",
            "byte-identical",
        ],
    ]
    report = format_table(
        ["path", "wall [s]", "speedup", "fixed-step waveforms"],
        rows,
        title=(
            f"compiled lane core — B={b} lanes, {duration_s:g} s at fixed "
            f"step {FIXED_STEP:g}, hold {RELINEARISE_INTERVAL}"
        ),
    )
    report += (
        f"\nadaptive leg (B={adaptive_b}): max relative score deviation "
        f"{max_dev:.2e} (tolerance {SCORE_TOLERANCE_REL})"
        f"\nrecord path micro-bench: per-sample appends {t_naive:.3f} s vs "
        f"buffered rows {t_buffered:.3f} s ({record_ratio:.1f}x)"
    )

    JSON_PATH.write_text(
        json.dumps(
            {
                "benchmark": "compiled_lane_core",
                "quick": quick,
                "backend": backend,
                "n_lanes": b,
                "duration_s_per_lane": duration_s,
                "fixed_step": FIXED_STEP,
                "relinearise_interval": RELINEARISE_INTERVAL,
                "record_interval": RECORD_INTERVAL,
                "t_interpreted_s": t_off,
                "t_compiled_s": t_compiled,
                "speedup": speedup,
                "fixed_step_byte_identical": True,
                "adaptive_n_lanes": adaptive_b,
                "adaptive_max_rel_score_deviation": max_dev,
                "score_tolerance_rel": SCORE_TOLERANCE_REL,
                "record_microbench": {
                    "t_per_sample_appends_s": t_naive,
                    "t_buffered_rows_s": t_buffered,
                    "ratio": record_ratio,
                },
            },
            indent=2,
        )
        + "\n"
    )

    if not quick:
        assert speedup >= MIN_SPEEDUP, (
            f"compiled speedup {speedup:.2f}x below the required "
            f"{MIN_SPEEDUP}x over the interpreted batched loop"
        )
    return report, speedup, max_dev


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--quick",
        action="store_true",
        help=(
            "small CI smoke stack: assert identity and the adaptive "
            "tolerance, skip the speed-up assertion"
        ),
    )
    args = parser.parse_args()
    report, speedup, max_dev = run(quick=args.quick)
    print(report)
    print(
        f"\ncompiled speedup {speedup:.2f}x, adaptive max relative score "
        f"deviation {max_dev:.2e}"
    )
    print(f"written: {JSON_PATH}")


if __name__ == "__main__":
    main()
