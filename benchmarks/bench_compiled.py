"""Compiled lane core: kernel march vs the interpreted batched loop.

The batched backend's remaining per-step cost is pure Python dispatch:
one interpreter iteration (refresh checks, record checks, stats
bookkeeping) per shared step, regardless of how wide the lane stack is.
The compiled lane core (:mod:`repro.core.kernels`) replaces runs of held
steps with one kernel call that advances all ``(B, n)`` lanes ``K``
steps at a time, ``K = min(steps_until_refresh, steps_until_record,
steps_until_earliest_t_end)``.

This benchmark marches B=256 supercapacitor-charging lanes (ambient
frequency swept across the tuning range) 0.5 s at a fixed 1e-4 step
under the amortised-relinearisation profile and asserts:

* **speedup**: the compiled march is at least 3x faster wall-clock than
  the interpreted batched loop on the same lane stack;
* **fixed-step byte-identity**: every trace of every lane is bit-equal
  between ``compiled="off"`` and the compiled run;
* **refresh-bound speedup**: on a refresh-bound profile
  (``relinearise_interval=4``) the batched refresh path
  (``refresh="auto"``, stacked block linearisation + workspace scatter)
  is at least 2x faster than the same compiled march with per-lane
  refresh (``refresh="perlane"``), byte-identically;
* **adaptive bursts**: on an adaptive shared-step leg (B=64, hold 8)
  the compiled loop with kernel-resident step negotiation is at least
  1.5x faster than the interpreted batched loop, bitwise on the numpy
  backend and within the documented 10 % score tolerance elsewhere.

A record-path micro-bench additionally times the buffered row-recorder
mechanism (geometrically grown ``(cap, B, n)`` arrays materialised into
traces once per lane) against the naive per-sample Python appends it
replaced.

Run directly (writes ``BENCH_compiled.json``)::

    PYTHONPATH=src python benchmarks/bench_compiled.py            # full
    PYTHONPATH=src python benchmarks/bench_compiled.py --quick    # CI smoke

Quick mode shrinks the lane stacks and still asserts identity, the
adaptive tolerance, and a noise-tolerant refresh-bound floor
(:data:`MIN_REFRESH_SPEEDUP_QUICK`); the full-size wall-clock gates
stay out of CI (runners are too noisy for the tight ratios).
"""

import argparse
import json
import time
from dataclasses import replace
from pathlib import Path

import numpy as np

from repro.core.batch import BatchedSolver
from repro.core.kernels import resolve_compiled
from repro.core.results import Trace
from repro.harvester.scenarios import (
    charging_scenario,
    prepare_assembly,
    scenario_solver_settings,
)
from repro.io.report import format_table

JSON_PATH = Path("BENCH_compiled.json")

#: required wall-clock advantage of the compiled march over the
#: interpreted batched loop (full mode only)
MIN_SPEEDUP = 3.0
#: required refresh-bound advantage of the batched refresh path over
#: per-lane refresh on the same compiled march (full mode)
MIN_REFRESH_SPEEDUP = 2.0
#: noise-tolerant refresh-bound floor asserted even in quick/CI mode
MIN_REFRESH_SPEEDUP_QUICK = 1.3
#: required advantage of compiled adaptive bursts over the interpreted
#: adaptive loop (full mode only)
MIN_ADAPTIVE_SPEEDUP = 1.5
#: documented adaptive shared-step score tolerance of the batched backend
SCORE_TOLERANCE_REL = 0.10

#: full-mode workload: wide enough that Python dispatch dominates the
#: interpreted loop, long enough holds that the kernel gets real bursts
FULL_B = 256
FULL_DURATION_S = 0.5
FIXED_STEP = 1e-4
RELINEARISE_INTERVAL = 128
RECORD_INTERVAL = 2e-2

#: refresh-bound profile: holds so short that linearise→eliminate
#: dominates the march, isolating the batched refresh path
REFRESH_BOUND_INTERVAL = 4
REFRESH_QUICK_B = 64
REFRESH_QUICK_DURATION_S = 0.1

QUICK_B = 16
QUICK_DURATION_S = 0.05

#: adaptive-leg lane stack and hold window (multi-step kernel bursts
#: between refreshes, step negotiation inside the kernel contract)
ADAPTIVE_B = 64
ADAPTIVE_DURATION_S = 0.1
ADAPTIVE_RELINEARISE_INTERVAL = 8


def build_lanes(b, duration_s):
    """Same-topology charging lanes across the magnetic tuning range.

    66 Hz is the floor: the initial tuned frequency cannot sit below the
    un-tuned resonance (magnetic tuning only raises it).
    """
    return [
        charging_scenario(duration_s=duration_s, frequency_hz=float(f))
        for f in np.linspace(66.0, 80.0, b)
    ]


def run_batch(scenarios, settings_list, compiled, refresh="auto"):
    structure = prepare_assembly(scenarios[0])
    harvesters = [
        s.build_harvester(assembly_structure=structure) for s in scenarios
    ]
    solver = BatchedSolver(
        [h.assembler for h in harvesters],
        settings=settings_list,
        compiled=compiled,
        refresh=refresh,
    )
    for i, harvester in enumerate(harvesters):
        harvester._wire(solver.lane_wiring(i))
    return solver.run([s.duration_s for s in scenarios])


def assert_byte_identical(reference, result):
    assert set(reference.failures) == set(result.failures)
    for i, (ref, got) in enumerate(zip(reference.results, result.results)):
        assert (ref is None) == (got is None)
        if ref is None:
            continue
        assert sorted(ref.traces) == sorted(got.traces)
        for name in ref.traces:
            assert np.array_equal(ref[name].times, got[name].times), (
                f"lane {i} {name}: compiled trace times differ"
            )
            assert np.array_equal(ref[name].values, got[name].values), (
                f"lane {i} {name}: compiled trace values differ"
            )


def fixed_step_comparison(b, duration_s, backend):
    """Interpreted vs compiled on one fixed-step lane stack."""
    scenarios = build_lanes(b, duration_s)
    settings_list = [
        replace(
            scenario_solver_settings(s),
            fixed_step=FIXED_STEP,
            relinearise_interval=RELINEARISE_INTERVAL,
            record_interval=RECORD_INTERVAL,
        )
        for s in scenarios
    ]

    t0 = time.perf_counter()
    interpreted = run_batch(scenarios, settings_list, "off")
    t_off = time.perf_counter() - t0

    t0 = time.perf_counter()
    compiled = run_batch(scenarios, settings_list, backend)
    t_compiled = time.perf_counter() - t0

    assert not interpreted.failures
    assert_byte_identical(interpreted, compiled)
    return t_off, t_compiled


def refresh_bound_comparison(b, duration_s, backend):
    """Per-lane vs batched refresh on a refresh-bound compiled march.

    Both legs run the same compiled kernel; only the relinearisation
    path differs, so the ratio isolates the stacked linearise→eliminate
    boundary.  The two paths must stay byte-identical.
    """
    scenarios = build_lanes(b, duration_s)
    settings_list = [
        replace(
            scenario_solver_settings(s),
            fixed_step=FIXED_STEP,
            relinearise_interval=REFRESH_BOUND_INTERVAL,
            record_interval=RECORD_INTERVAL,
        )
        for s in scenarios
    ]

    t0 = time.perf_counter()
    perlane = run_batch(scenarios, settings_list, backend, refresh="perlane")
    t_perlane = time.perf_counter() - t0

    t0 = time.perf_counter()
    batched = run_batch(scenarios, settings_list, backend, refresh="auto")
    t_batched = time.perf_counter() - t0

    assert not perlane.failures
    for result in batched.results:
        assert result.metadata["batched_refresh"] is True
    assert_byte_identical(perlane, batched)
    return t_perlane, t_batched


def adaptive_burst_comparison(b, duration_s, backend):
    """Interpreted vs compiled adaptive shared-step bursts.

    Returns ``(t_interpreted, t_compiled, max_rel_deviation)``.  On the
    numpy backend the compiled adaptive run must be bitwise identical to
    the interpreted loop (negotiation and march replay the interpreted
    expressions); other backends stay inside the documented tolerance.
    """
    scenarios = build_lanes(b, duration_s)
    settings_list = [
        replace(
            scenario_solver_settings(s),
            relinearise_interval=ADAPTIVE_RELINEARISE_INTERVAL,
            record_interval=RECORD_INTERVAL,
        )
        for s in scenarios
    ]

    t0 = time.perf_counter()
    interpreted = run_batch(scenarios, settings_list, "off", refresh="perlane")
    t_interp = time.perf_counter() - t0

    t0 = time.perf_counter()
    compiled = run_batch(scenarios, settings_list, backend, refresh="auto")
    t_compiled = time.perf_counter() - t0

    assert not interpreted.failures and not compiled.failures
    if backend == "numpy":
        assert_byte_identical(interpreted, compiled)
    deviations = [
        abs(
            got["storage_voltage"].final() - ref["storage_voltage"].final()
        )
        / abs(ref["storage_voltage"].final())
        for ref, got in zip(interpreted.results, compiled.results)
    ]
    max_dev = max(deviations)
    assert max_dev <= SCORE_TOLERANCE_REL, (
        f"adaptive compiled deviation {max_dev:.3e} exceeds the documented "
        f"tolerance {SCORE_TOLERANCE_REL}"
    )
    return t_interp, t_compiled, max_dev


def record_path_microbench(b=256, events=400, n_signals=6):
    """Buffered row-recorder mechanism vs naive per-sample appends.

    Returns ``(t_naive_s, t_buffered_s)`` for recording ``events``
    samples of ``n_signals`` quantities across ``b`` lanes: the naive
    path appends into per-lane :class:`Trace` objects sample by sample
    (the interpreted loop's mechanism), the buffered path fills
    geometrically grown rows and materialises traces once per lane (the
    compiled loop's mechanism).
    """
    times = np.arange(events) * 1e-3
    values = np.sin(times[:, None, None] + np.arange(b * n_signals).reshape(b, n_signals))

    t0 = time.perf_counter()
    naive = [
        [Trace(f"s{j}") for j in range(n_signals)] for _ in range(b)
    ]
    for e in range(events):
        t = float(times[e])
        frame = values[e]
        for lane in range(b):
            lane_traces = naive[lane]
            lane_frame = frame[lane]
            for j in range(n_signals):
                lane_traces[j].append(t, lane_frame[j])
    t_naive = time.perf_counter() - t0

    t0 = time.perf_counter()
    cap, n = 64, 0
    buf = np.empty((cap, b, n_signals))
    buf_times = np.empty(cap)
    for e in range(events):
        if n == cap:
            cap *= 2
            grown = np.empty((cap, b, n_signals))
            grown[:n] = buf
            buf = grown
            grown_times = np.empty(cap)
            grown_times[:n] = buf_times
            buf_times = grown_times
        buf[n] = values[e]
        buf_times[n] = times[e]
        n += 1
    buffered = [
        [
            Trace.from_samples(f"s{j}", buf_times[:n], buf[:n, lane, j])
            for j in range(n_signals)
        ]
        for lane in range(b)
    ]
    t_buffered = time.perf_counter() - t0

    for lane in range(b):
        for j in range(n_signals):
            assert np.array_equal(
                naive[lane][j].values, buffered[lane][j].values
            )
    return t_naive, t_buffered


def run(quick=False):
    backend = resolve_compiled("auto")
    b = QUICK_B if quick else FULL_B
    duration_s = QUICK_DURATION_S if quick else FULL_DURATION_S

    t_off, t_compiled = fixed_step_comparison(b, duration_s, backend)
    speedup = t_off / t_compiled

    refresh_b = REFRESH_QUICK_B if quick else FULL_B
    refresh_duration = REFRESH_QUICK_DURATION_S if quick else FULL_DURATION_S
    t_perlane, t_batched = refresh_bound_comparison(
        refresh_b, refresh_duration, backend
    )
    refresh_speedup = t_perlane / t_batched
    refresh_floor = MIN_REFRESH_SPEEDUP_QUICK if quick else MIN_REFRESH_SPEEDUP
    assert refresh_speedup >= refresh_floor, (
        f"batched refresh speedup {refresh_speedup:.2f}x below the required "
        f"{refresh_floor}x over per-lane refresh "
        f"(refresh-bound profile, hold {REFRESH_BOUND_INTERVAL})"
    )

    adaptive_b = min(ADAPTIVE_B, 4 * b)
    adaptive_duration = QUICK_DURATION_S if quick else ADAPTIVE_DURATION_S
    t_adaptive_interp, t_adaptive_compiled, max_dev = adaptive_burst_comparison(
        adaptive_b, adaptive_duration, backend
    )
    adaptive_speedup = t_adaptive_interp / t_adaptive_compiled

    t_naive, t_buffered = record_path_microbench(b=b)
    record_ratio = t_naive / t_buffered

    rows = [
        ["interpreted batched loop", f"{t_off:.2f}", "1.00", "reference"],
        [
            f"compiled lane core ({backend})",
            f"{t_compiled:.2f}",
            f"{speedup:.2f}",
            "byte-identical",
        ],
        [
            f"  + per-lane refresh, hold {REFRESH_BOUND_INTERVAL}",
            f"{t_perlane:.2f}",
            "1.00",
            "reference",
        ],
        [
            f"  + batched refresh, hold {REFRESH_BOUND_INTERVAL}",
            f"{t_batched:.2f}",
            f"{refresh_speedup:.2f}",
            "byte-identical",
        ],
    ]
    report = format_table(
        ["path", "wall [s]", "speedup", "fixed-step waveforms"],
        rows,
        title=(
            f"compiled lane core — B={b} lanes, {duration_s:g} s at fixed "
            f"step {FIXED_STEP:g}, hold {RELINEARISE_INTERVAL} "
            f"(refresh-bound legs: B={refresh_b}, {refresh_duration:g} s)"
        ),
    )
    report += (
        f"\nadaptive bursts (B={adaptive_b}, hold "
        f"{ADAPTIVE_RELINEARISE_INTERVAL}): interpreted "
        f"{t_adaptive_interp:.2f} s vs compiled {t_adaptive_compiled:.2f} s "
        f"({adaptive_speedup:.2f}x), max relative score deviation "
        f"{max_dev:.2e} (tolerance {SCORE_TOLERANCE_REL}"
        f"{', bitwise on numpy' if backend == 'numpy' else ''})"
        f"\nrecord path micro-bench: per-sample appends {t_naive:.3f} s vs "
        f"buffered rows {t_buffered:.3f} s ({record_ratio:.1f}x)"
    )

    JSON_PATH.write_text(
        json.dumps(
            {
                "benchmark": "compiled_lane_core",
                "quick": quick,
                "backend": backend,
                "n_lanes": b,
                "duration_s_per_lane": duration_s,
                "fixed_step": FIXED_STEP,
                "relinearise_interval": RELINEARISE_INTERVAL,
                "record_interval": RECORD_INTERVAL,
                "t_interpreted_s": t_off,
                "t_compiled_s": t_compiled,
                "speedup": speedup,
                "fixed_step_byte_identical": True,
                "refresh_bound": {
                    "n_lanes": refresh_b,
                    "duration_s_per_lane": refresh_duration,
                    "relinearise_interval": REFRESH_BOUND_INTERVAL,
                    "t_perlane_refresh_s": t_perlane,
                    "t_batched_refresh_s": t_batched,
                    "speedup": refresh_speedup,
                    "byte_identical": True,
                    "asserted_floor": refresh_floor,
                },
                "adaptive": {
                    "n_lanes": adaptive_b,
                    "duration_s_per_lane": adaptive_duration,
                    "relinearise_interval": ADAPTIVE_RELINEARISE_INTERVAL,
                    "t_interpreted_s": t_adaptive_interp,
                    "t_compiled_s": t_adaptive_compiled,
                    "speedup": adaptive_speedup,
                    "bitwise": backend == "numpy",
                },
                "adaptive_n_lanes": adaptive_b,
                "adaptive_max_rel_score_deviation": max_dev,
                "score_tolerance_rel": SCORE_TOLERANCE_REL,
                "record_microbench": {
                    "t_per_sample_appends_s": t_naive,
                    "t_buffered_rows_s": t_buffered,
                    "ratio": record_ratio,
                },
            },
            indent=2,
        )
        + "\n"
    )

    if not quick:
        assert speedup >= MIN_SPEEDUP, (
            f"compiled speedup {speedup:.2f}x below the required "
            f"{MIN_SPEEDUP}x over the interpreted batched loop"
        )
        assert adaptive_speedup >= MIN_ADAPTIVE_SPEEDUP, (
            f"compiled adaptive speedup {adaptive_speedup:.2f}x below the "
            f"required {MIN_ADAPTIVE_SPEEDUP}x over the interpreted "
            "adaptive loop"
        )
    return report, speedup, refresh_speedup, adaptive_speedup, max_dev


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--quick",
        action="store_true",
        help=(
            "small CI smoke stack: assert identity, the adaptive "
            "tolerance, and the relaxed refresh-bound floor; skip the "
            "full-size speed-up assertions"
        ),
    )
    args = parser.parse_args()
    report, speedup, refresh_speedup, adaptive_speedup, max_dev = run(
        quick=args.quick
    )
    print(report)
    print(
        f"\ncompiled speedup {speedup:.2f}x, batched refresh "
        f"{refresh_speedup:.2f}x (refresh-bound), adaptive bursts "
        f"{adaptive_speedup:.2f}x, adaptive max relative score deviation "
        f"{max_dev:.2e}"
    )
    print(f"written: {JSON_PATH}")


if __name__ == "__main__":
    main()
