"""Ablation: choice and order of the explicit integration formula.

The paper adopts the multi-step Adams-Bashforth formula "due to its
simplicity and accuracy" and notes that the step size is bounded by the
stability of the explicit march.  This ablation quantifies that choice on
the charging workload: AB2 (whose stability region does not cover the
imaginary axis) is forced to tiny steps by the lightly damped mechanical
resonance, while AB3/AB4 and RK4 run at the accuracy-limited step.
"""

import pytest

from repro.analysis.waveforms import compare_traces
from repro.core.integrators import AdamsBashforth, RungeKutta4
from repro import RunOptions, Study
from repro.harvester.scenarios import charging_scenario
from repro.io.report import format_table

DURATION_S = 0.15

_rows = {}
_results = {}

INTEGRATORS = {
    "ab2": AdamsBashforth(order=2),
    "ab3": AdamsBashforth(order=3),
    "ab4": AdamsBashforth(order=4),
    "rk4": RungeKutta4(),
}


@pytest.mark.parametrize("name", list(INTEGRATORS))
def test_integrator(benchmark, name):
    scenario = charging_scenario(duration_s=DURATION_S)
    result = benchmark.pedantic(
        lambda: Study.scenario(scenario)
        .options(RunOptions(integrator=INTEGRATORS[name]))
        .run()
        .result,
        rounds=1,
        iterations=1,
    )
    _results[name] = result
    _rows[name] = [
        name,
        str(result.stats.n_accepted_steps),
        f"{result.stats.max_step * 1e3:.3f}",
        f"{result.stats.cpu_time_s:.2f}",
    ]
    assert result.stats.n_accepted_steps > 0


def test_zz_report_integrator_ablation(benchmark, report_writer):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    assert len(_rows) == len(INTEGRATORS)
    text = format_table(
        ["integrator", "accepted steps", "max step [ms]", "CPU [s]"],
        [_rows[name] for name in INTEGRATORS],
        title=f"Ablation — integrator choice on {DURATION_S} s of charging",
    )
    report_writer("ablation_integrators", text)

    # AB2 (no imaginary-axis coverage) must take many more steps than AB3
    assert _results["ab2"].stats.n_accepted_steps > 2 * _results["ab3"].stats.n_accepted_steps
    # AB3 and RK4 agree on the waveform despite very different formulas
    comparison = compare_traces(
        _results["rk4"]["multiplier.Vin"], _results["ab3"]["multiplier.Vin"]
    )
    assert comparison.normalised_rms_error < 0.05
