"""Builder overhead: SystemBuilder-compiled vs hand-wired assembly.

PR 2 moved the paper topology from ~300 lines of hand-wiring in
``harvester/system.py`` onto the declarative spec layer (``paper_spec()``
compiled by :class:`~repro.core.builder.SystemBuilder`).  The layer must
be free: this benchmark measures

* **construction only** — instantiate blocks + netlist + assembler both
  ways (the builder additionally validates the spec and coerces every
  parameter through the registry schema, costing tens of microseconds);
* **end to end** — construction followed by a short charging simulation,
  which is what a sweep candidate actually costs.  Here the builder must
  be within noise of the hand-wired path (asserted at 5 % in full mode;
  ``--quick`` reports the number without asserting, because a ~40 ms
  wall-clock sample is itself inside scheduler noise on shared CI
  runners), since the microsecond-scale construction delta vanishes
  against the solve.

Also asserts the two paths produce byte-identical storage-voltage
waveforms (the structural guarantee behind all of this).

Writes ``BENCH_builder.json`` (machine-readable, tracked across PRs) and
``benchmarks/results/builder_overhead.txt``.

Run via pytest or directly::

    PYTHONPATH=src python -m pytest benchmarks/bench_builder_overhead.py -q
    PYTHONPATH=src python benchmarks/bench_builder_overhead.py [--quick]
"""

import argparse
import json
import time
from pathlib import Path

import numpy as np

from repro.blocks.microgenerator import ElectromagneticMicrogenerator
from repro.blocks.supercapacitor import Supercapacitor
from repro.blocks.vibration import VibrationSource
from repro.blocks.voltage_multiplier import DicksonMultiplier
from repro.core import Netlist, SystemAssembler, SystemBuilder
from repro.core.solver import LinearisedStateSpaceSolver
from repro.harvester.config import paper_harvester
from repro.harvester.system import default_solver_settings, paper_spec
from repro.io.report import format_table

#: end-to-end slowdown allowed for the builder path (noise bound)
MAX_END_TO_END_OVERHEAD = 0.05

JSON_PATH = Path("BENCH_builder.json")


def _hand_wired_assembler(cfg):
    source = VibrationSource(cfg.excitation.frequency_hz, cfg.excitation.amplitude_ms2)
    generator = ElectromagneticMicrogenerator(
        cfg.generator, source.acceleration, name="generator"
    )
    multiplier = DicksonMultiplier(
        n_stages=cfg.multiplier_stages,
        stage_capacitance_f=cfg.multiplier_capacitance_f,
        output_capacitance_f=cfg.multiplier_output_capacitance_f,
        input_capacitance_f=cfg.multiplier_input_capacitance_f,
        diode_params=cfg.diode,
        name="multiplier",
    )
    storage = Supercapacitor(
        params=cfg.supercapacitor,
        load_profile=cfg.load_profile,
        initial_voltage_v=cfg.initial_storage_voltage_v,
        name="storage",
    )
    netlist = Netlist()
    for block in (generator, multiplier, storage):
        netlist.add_block(block)
    netlist.connect_port(
        generator, multiplier, voltage=("Vm", "Vm"), current=("Im", "Im"),
        net_prefix="generator_output",
    )
    netlist.connect_port(
        multiplier, storage, voltage=("Vc", "Vc"), current=("Ic", "Ic"),
        net_prefix="storage_port",
    )
    return SystemAssembler(netlist), storage


def _hand_wired_run(cfg, duration_s):
    assembler, storage = _hand_wired_assembler(cfg)
    solver = LinearisedStateSpaceSolver(
        assembler=assembler,
        settings=default_solver_settings(cfg.excitation.frequency_hz),
    )
    idx_vc = assembler.net_index("storage", "Vc")
    solver.add_probe("storage_voltage", lambda t, x, y: float(y[idx_vc]))
    return solver.run(duration_s)


def _builder_run(cfg, duration_s):
    built = SystemBuilder(paper_spec(cfg, with_controller=False)).build()
    solver = built.build_solver(
        settings=default_solver_settings(cfg.excitation.frequency_hz)
    )
    return solver.run(duration_s)


def _best_of_interleaved(fn_a, fn_b, repeats):
    """Best-of timings for two paths, alternating runs.

    Interleaving means a load spike hits both paths rather than biasing
    whichever happened to run second; best-of discards the spikes.
    """
    times_a, times_b = [], []
    for _ in range(repeats):
        t0 = time.perf_counter()
        fn_a()
        times_a.append(time.perf_counter() - t0)
        t0 = time.perf_counter()
        fn_b()
        times_b.append(time.perf_counter() - t0)
    return min(times_a), min(times_b)


def run_benchmark(
    *, construct_iters=200, run_repeats=5, duration_s=0.05, assert_overhead=True
):
    # pre-tuning is applied by the harvester wrapper, not by the raw
    # hand-wiring replicated here, so compare the un-tuned open-loop system
    cfg = paper_harvester().with_initial_tuning(None)

    # byte-identical waveforms first — speed is meaningless otherwise
    hand_result = _hand_wired_run(cfg, duration_s)
    spec_result = _builder_run(cfg, duration_s)
    assert np.array_equal(
        hand_result["storage_voltage"].values,
        spec_result["storage_voltage"].values,
    ), "builder-compiled waveforms differ from the hand-wired assembly"

    # construction-only timing (averaged: both are sub-millisecond)
    _hand_wired_assembler(cfg)  # warm diode-table caches
    t0 = time.perf_counter()
    for _ in range(construct_iters):
        _hand_wired_assembler(cfg)
    t_construct_hand = (time.perf_counter() - t0) / construct_iters
    t0 = time.perf_counter()
    for _ in range(construct_iters):
        SystemBuilder(paper_spec(cfg, with_controller=False)).build()
    t_construct_builder = (time.perf_counter() - t0) / construct_iters

    # end-to-end timing (interleaved best-of to suppress scheduler noise)
    t_e2e_hand, t_e2e_builder = _best_of_interleaved(
        lambda: _hand_wired_run(cfg, duration_s),
        lambda: _builder_run(cfg, duration_s),
        run_repeats,
    )
    overhead = t_e2e_builder / t_e2e_hand - 1.0

    data = {
        "benchmark": "builder_overhead",
        "duration_s": duration_s,
        "construct_hand_wired_ms": t_construct_hand * 1e3,
        "construct_builder_ms": t_construct_builder * 1e3,
        "construct_delta_us": (t_construct_builder - t_construct_hand) * 1e6,
        "end_to_end_hand_wired_s": t_e2e_hand,
        "end_to_end_builder_s": t_e2e_builder,
        "end_to_end_overhead_rel": overhead,
        "max_allowed_overhead_rel": MAX_END_TO_END_OVERHEAD,
        "waveforms_byte_identical": True,
    }
    JSON_PATH.write_text(json.dumps(data, indent=2) + "\n")

    report = format_table(
        ["path", "construct [ms]", "end-to-end [s]"],
        [
            ["hand-wired", f"{t_construct_hand * 1e3:.3f}", f"{t_e2e_hand:.3f}"],
            [
                "SystemBuilder(paper_spec())",
                f"{t_construct_builder * 1e3:.3f}",
                f"{t_e2e_builder:.3f}",
            ],
        ],
        title=(
            f"builder overhead — {duration_s:g} s simulated, "
            f"waveforms byte-identical, end-to-end overhead "
            f"{overhead * 100:+.1f} % (bound {MAX_END_TO_END_OVERHEAD * 100:.0f} %)"
        ),
    )

    if assert_overhead:
        assert overhead <= MAX_END_TO_END_OVERHEAD, (
            f"builder end-to-end overhead {overhead * 100:.1f} % exceeds the "
            f"{MAX_END_TO_END_OVERHEAD * 100:.0f} % noise bound"
        )
    return report, data


def test_builder_overhead(report_writer):
    report, _data = run_benchmark()
    report_writer("builder_overhead", report)


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--quick",
        action="store_true",
        help=(
            "fewer construction iterations / repeats (CI smoke); the "
            "correctness (byte-identity) check still runs, but the timing "
            "bound is reported without asserting — a ~40 ms wall-clock "
            "sample is inside scheduler noise on shared runners"
        ),
    )
    args = parser.parse_args()
    if args.quick:
        report, data = run_benchmark(
            construct_iters=50, run_repeats=2, duration_s=0.03, assert_overhead=False
        )
    else:
        report, data = run_benchmark()
    print(report)
    print(f"\nwritten: {JSON_PATH}")


if __name__ == "__main__":
    main()
