"""Table I: CPU times of different simulation environments.

The paper simulates a supercapacitor-charging run of the harvester with
three conventional tools (SystemVision/VHDL-AMS 4 h 24 min, OrCAD/PSPICE
9 h 48 min, SystemC-A 6 h 40 min on a Pentium 4).  This benchmark runs the
same workload on the in-repo stand-ins:

* ``vhdl_ams_like``  — implicit trapezoidal + Newton-Raphson on the block
  model with finite-difference Jacobians (SystemVision stand-in);
* ``pspice_like``    — the MNA equivalent-circuit engine (PSPICE stand-in);
* ``systemc_a_like`` — implicit backward-Euler + Newton-Raphson
  (conventionally-solved SystemC-A stand-in);
* ``proposed``       — the linearised state-space technique.

Absolute durations are scaled (short simulated windows, see EXPERIMENTS.md);
the reproduced quantity is the *ratio* of CPU cost per simulated second,
i.e. which simulator wins and by roughly what factor.
"""


from repro.analysis.speedup import SpeedupTable, TimingEntry
from repro.baselines.implicit_solver import ImplicitSolverSettings
from repro.baselines.mna import TransientSettings
from repro.baselines.spice import SpiceLikeHarvesterSimulator
from repro.core.integrators import BackwardEuler, Trapezoidal
from repro import Study
from repro.harvester.scenarios import charging_scenario

#: simulated durations per engine — the slow baselines get shorter windows;
#: all costs are normalised per simulated second before comparison
PROPOSED_DURATION_S = 0.5
BASELINE_DURATION_S = 0.04
SPICE_DURATION_S = 0.04
#: a circuit simulator's local-truncation-error control resolves the diode
#: commutation of the charge pump with steps of a few tens of microseconds;
#: the MNA stand-in uses that step because it has no LTE control of its own
SPICE_STEP_S = 2e-5

_table = SpeedupTable(
    title="Table I — CPU cost of the supercapacitor-charging simulation",
    reference_label="proposed",
)


def test_proposed_linearised_state_space(benchmark, report_writer):
    scenario = charging_scenario(duration_s=PROPOSED_DURATION_S)
    result = benchmark.pedantic(
        lambda: Study.scenario(scenario).run().result, rounds=1, iterations=1
    )
    _table.add(
        TimingEntry.from_result("proposed", result, notes="linearised state-space + AB3")
    )
    assert result.stats.n_accepted_steps > 0


def test_vhdl_ams_like_baseline(benchmark, report_writer):
    scenario = charging_scenario(duration_s=BASELINE_DURATION_S)
    result = benchmark.pedantic(
        lambda: Study.scenario(scenario)
        .solver(
            "baseline",
            formula=Trapezoidal,
            settings=ImplicitSolverSettings(step_size=2e-4, record_interval=1e-3),
        )
        .run()
        .result,
        rounds=1,
        iterations=1,
    )
    _table.add(
        TimingEntry.from_result(
            "vhdl_ams_like", result, notes="trapezoidal + NR, FD Jacobians"
        )
    )
    assert result.stats.n_newton_iterations > 0


def test_systemc_a_like_baseline(benchmark, report_writer):
    scenario = charging_scenario(duration_s=BASELINE_DURATION_S)
    result = benchmark.pedantic(
        lambda: Study.scenario(scenario)
        .solver(
            "baseline",
            formula=BackwardEuler,
            settings=ImplicitSolverSettings(step_size=2e-4, record_interval=1e-3),
        )
        .run()
        .result,
        rounds=1,
        iterations=1,
    )
    _table.add(
        TimingEntry.from_result(
            "systemc_a_like", result, notes="backward Euler + NR, FD Jacobians"
        )
    )
    assert result.stats.n_newton_iterations > 0


def test_pspice_like_baseline(benchmark, report_writer):
    simulator = SpiceLikeHarvesterSimulator(
        settings=TransientSettings(step_size=SPICE_STEP_S, record_interval=1e-3),
        tuned_frequency_hz=70.0,
    )
    result = benchmark.pedantic(lambda: simulator.run(SPICE_DURATION_S), rounds=1, iterations=1)
    _table.add(
        TimingEntry.from_result(
            "pspice_like", result, notes="MNA equivalent circuit + NR"
        )
    )
    assert result.stats.n_newton_iterations > 0


def test_zz_report_table1(benchmark, report_writer):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    """Aggregate the rows collected above into the Table I reproduction."""
    assert len(_table.entries) == 4
    lines = [_table.format(), "", "paper reference (absolute, 2005-era workstation):"]
    lines.append("  SystemVision (VHDL-AMS): 4 h 24 min")
    lines.append("  OrCAD (PSPICE):          9 h 48 min")
    lines.append("  Visual C++ (SystemC-A):  6 h 40 min")
    report_writer("table1_cpu_times", "\n".join(lines))
    # reproduction of the shape: the HDL-style Newton-Raphson engines are at
    # least an order of magnitude more expensive per simulated second; the
    # lean in-repo MNA engine underestimates OrCAD's true cost (no device
    # model overhead, no interpreter) so only a weaker margin is required of
    # it — see EXPERIMENTS.md for the discussion
    speedups = _table.speedups()
    assert speedups["vhdl_ams_like"] > 5.0
    assert speedups["systemc_a_like"] > 5.0
    assert speedups["pspice_like"] > 1.5
