"""Ablations: lookup-table granularity and the stiffness limitation.

Two claims from Section II/III of the paper:

1. "To maintain high modelling accuracy the granularity of the piece-wise
   linear models can be arbitrarily fine since the size of the look-up
   tables does not affect the simulation speed."  — the first benchmark
   sweeps the diode-table size and shows the CPU time stays flat while the
   table's approximation error falls.

2. "The technique is unlikely to offer a speed advantage when applied to
   strongly stiff systems as the step-size must be kept small to ensure
   stability even if the accuracy control permits larger steps." — the
   second benchmark stiffens the model (smaller diode series resistance,
   i.e. a faster electrical time constant) and shows the step collapsing
   and the CPU cost per simulated second growing.
"""

import dataclasses

import numpy as np
import pytest

from repro.blocks.diode import DiodeParameters, ShockleyDiode, build_diode_companion_table
from repro.harvester.config import paper_harvester
from repro import Study
from repro.harvester.scenarios import charging_scenario
from repro.io.report import format_table

_pwl_rows = {}
_stiff_rows = {}

TABLE_SIZES = [32, 128, 1024]
SERIES_RESISTANCES = {"nominal_3300ohm": 3300.0, "stiffer_330ohm": 330.0}
PWL_DURATION_S = 0.25
STIFF_DURATION_S = 0.08


def _table_error(n_points):
    params = paper_harvester().diode
    table = build_diode_companion_table(params, n_points=n_points)
    diode = ShockleyDiode(params)
    probes = np.linspace(-2.0, 1.0, 301)
    errors = [abs(table.branch_current(float(v)) - diode.current(float(v))) for v in probes]
    return max(errors)


@pytest.mark.parametrize("n_points", TABLE_SIZES)
def test_pwl_table_granularity(benchmark, n_points):
    scenario = charging_scenario(duration_s=PWL_DURATION_S)
    config = scenario.config

    def run():
        harvester = scenario.build_harvester()
        harvester.multiplier.companion_table = build_diode_companion_table(
            config.diode, n_points=n_points
        )
        solver = harvester.build_solver()
        return solver.run(scenario.duration_s)

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    _pwl_rows[n_points] = [
        str(n_points),
        f"{_table_error(n_points):.2e}",
        str(result.stats.n_accepted_steps),
        f"{result.stats.cpu_time_s:.2f}",
    ]
    assert result.stats.n_accepted_steps > 0


@pytest.mark.parametrize("label", list(SERIES_RESISTANCES))
def test_stiffness_limitation(benchmark, label):
    resistance = SERIES_RESISTANCES[label]
    base = charging_scenario(duration_s=STIFF_DURATION_S)
    config = dataclasses.replace(
        base.config, diode=DiodeParameters(series_resistance_ohm=resistance)
    )
    scenario = dataclasses.replace(base, config=config)
    result = benchmark.pedantic(
        lambda: Study.scenario(scenario).run().result, rounds=1, iterations=1
    )
    _stiff_rows[label] = [
        label,
        f"{resistance:.0f}",
        f"{result.stats.max_step * 1e6:.1f}",
        str(result.stats.n_accepted_steps),
        f"{result.stats.cpu_time_s / result.stats.final_time:.2f}",
    ]
    assert result.stats.n_accepted_steps > 0


def test_zz_report_ablations(benchmark, report_writer):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    assert len(_pwl_rows) == len(TABLE_SIZES)
    assert len(_stiff_rows) == len(SERIES_RESISTANCES)

    pwl_text = format_table(
        ["table breakpoints", "max diode-model error [A]", "accepted steps", "CPU [s]"],
        [_pwl_rows[n] for n in TABLE_SIZES],
        title="Ablation — PWL table granularity (accuracy improves, speed unchanged)",
    )
    stiff_text = format_table(
        ["configuration", "diode Rs [ohm]", "max step [us]", "accepted steps", "CPU per simulated second [s]"],
        [_stiff_rows[label] for label in SERIES_RESISTANCES],
        title="Ablation — stiffness limitation (faster electrical time constant shrinks the step)",
    )
    report_writer("ablation_pwl_and_stiffness", pwl_text + "\n\n" + stiff_text)

    # claim 1: CPU time roughly flat (within 2x) across a 32x table-size range
    cpu_times = [float(_pwl_rows[n][3]) for n in TABLE_SIZES]
    assert max(cpu_times) < 2.0 * min(cpu_times) + 0.5
    # claim 1: accuracy improves with granularity
    errors = [float(_pwl_rows[n][1]) for n in TABLE_SIZES]
    assert errors[-1] <= errors[0]
    # claim 2: the stiffer configuration needs more steps per simulated second
    nominal_steps = int(_stiff_rows["nominal_3300ohm"][3])
    stiff_steps = int(_stiff_rows["stiffer_330ohm"][3])
    assert stiff_steps > 1.5 * nominal_steps
