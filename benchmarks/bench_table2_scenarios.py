"""Table II: CPU times of the existing and proposed techniques on the two
tuning scenarios.

Paper values (absolute, 2005-era workstation):

==========  =================  ==================
scenario    SystemVision (NR)  proposed (AB)
==========  =================  ==================
Scenario 1  2185 s             20.3 s   (~108x)
Scenario 2  7 hours            228 s    (~110x)
==========  =================  ==================

Here both engines run the same (scaled) scenarios; the baseline gets a
shorter window and the comparison uses CPU cost per simulated second.  The
reproduced shape is that the proposed linearised state-space technique wins
by a large factor on both scenarios.
"""

import pytest

from repro.analysis.speedup import SpeedupTable, TimingEntry
from repro.baselines.implicit_solver import ImplicitSolverSettings
from repro import Study
from repro.harvester.scenarios import scenario_1, scenario_2

PROPOSED_DURATION_S = {"scenario_1": 3.0, "scenario_2": 3.5}
BASELINE_DURATION_S = 0.06

_tables = {
    "scenario_1": SpeedupTable(
        title="Table II row 1 — Scenario 1 (1 Hz tuning)", reference_label="proposed"
    ),
    "scenario_2": SpeedupTable(
        title="Table II row 2 — Scenario 2 (14 Hz tuning)", reference_label="proposed"
    ),
}


def _scenario(name, duration):
    if name == "scenario_1":
        return scenario_1(duration_s=duration, shift_time_s=min(0.5, duration / 2))
    return scenario_2(duration_s=duration, shift_time_s=min(0.5, duration / 2))


@pytest.mark.parametrize("name", ["scenario_1", "scenario_2"])
def test_proposed_technique(benchmark, name):
    scenario = _scenario(name, PROPOSED_DURATION_S[name])
    result = benchmark.pedantic(
        lambda: Study.scenario(scenario).run().result, rounds=1, iterations=1
    )
    _tables[name].add(
        TimingEntry.from_result("proposed", result, notes="linearised state-space + AB3")
    )
    assert result.stats.n_accepted_steps > 0


@pytest.mark.parametrize("name", ["scenario_1", "scenario_2"])
def test_existing_technique_newton_raphson(benchmark, name):
    scenario = _scenario(name, BASELINE_DURATION_S)
    result = benchmark.pedantic(
        lambda: Study.scenario(scenario)
        .solver(
            "baseline",
            settings=ImplicitSolverSettings(step_size=2e-4, record_interval=1e-3),
        )
        .run()
        .result,
        rounds=1,
        iterations=1,
    )
    _tables[name].add(
        TimingEntry.from_result(
            "existing_newton_raphson", result, notes="trapezoidal + NR (SystemVision stand-in)"
        )
    )
    assert result.stats.n_newton_iterations > 0


def test_zz_report_table2(benchmark, report_writer):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    lines = []
    for name, table in _tables.items():
        assert len(table.entries) == 2, f"missing rows for {name}"
        lines.append(table.format())
        lines.append("")
    lines.append("paper reference: Scenario 1 — 2185 s vs 20.3 s; Scenario 2 — 7 h vs 228 s")
    report_writer("table2_scenarios", "\n".join(lines))
    for name, table in _tables.items():
        factor = table.speedups()["existing_newton_raphson"]
        assert factor > 5.0, f"proposed technique should clearly win on {name}"
