"""Fig. 8(a): microgenerator output power during the 1 Hz tuning process.

The paper reports a simulated RMS output power of 118 uW with the
microgenerator tuned at 70 Hz and 117 uW after the retune to 71 Hz, against
a measured 116 uW: the power dips while the ambient frequency and the
resonant frequency disagree and recovers to (almost) the same level after
tuning.  This benchmark regenerates that series: RMS power before the
frequency shift, during the mismatch, and after the retune.
"""

from repro.analysis.power import rms_power
from repro import Study
from repro.harvester.scenarios import scenario_1
from repro.io.report import format_table

#: the shift happens late enough for the resonance to build up first, and the
#: run extends long enough after the retune for it to settle again
DURATION_S = 5.0
SHIFT_TIME_S = 1.5


def test_fig8a_power_series(benchmark, report_writer):
    scenario = scenario_1(duration_s=DURATION_S, shift_time_s=SHIFT_TIME_S)
    result = benchmark.pedantic(
        lambda: Study.scenario(scenario).run().result, rounds=1, iterations=1
    )

    power = result["generator_power"]
    tuned_70 = rms_power(power, 1.0, SHIFT_TIME_S)
    during_mismatch = rms_power(power, SHIFT_TIME_S + 0.2, SHIFT_TIME_S + 0.7)
    tuned_71 = rms_power(power, DURATION_S - 0.8, DURATION_S - 0.1)

    rows = [
        ["tuned at 70 Hz (before shift)", f"{tuned_70 * 1e6:.1f}", "118"],
        ["mismatched (70 Hz device, 71 Hz ambient)", f"{during_mismatch * 1e6:.1f}", "(dips)"],
        ["re-tuned at 71 Hz (after tuning)", f"{tuned_71 * 1e6:.1f}", "117"],
    ]
    text = format_table(
        ["operating condition", "RMS power, this repo [uW]", "paper [uW]"],
        rows,
        title="Fig. 8(a) — microgenerator output power around the 1 Hz retune",
    )
    text += "\n(paper's experimental measurement: 116 uW)"
    report_writer("fig8a_power", text)

    # shape assertions: power before and after the retune are of the same
    # order and within a factor ~2 of the paper's ~117 uW; the mismatch
    # interval loses power relative to the tuned intervals
    assert result.metadata.get("n_tunings_completed", 0) >= 1
    assert 30e-6 < tuned_70 < 400e-6
    assert 30e-6 < tuned_71 < 400e-6
    assert abs(tuned_71 - tuned_70) < 0.35 * tuned_70
    assert during_mismatch < tuned_70
