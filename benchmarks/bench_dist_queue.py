"""Distributed queue sweep: worker-loss fault tolerance, identical scores.

PR 10's acceptance demo.  A 64-candidate sweep dispatched through
``RunOptions(backend="queue")`` to two external ``repro worker``
processes over a ``repro kv-serve`` store must

* produce the **exact** winner and per-candidate scores of
  ``backend="process"`` (workers run the same scalar candidate path, and
  queue/process share one execution fingerprint), and
* **complete after one worker is SIGKILLed mid-sweep** — the dead
  worker's leased candidate stops heartbeating, its lease expires, and
  the surviving worker re-runs it.

Writes ``BENCH_dist.json`` (machine-readable, uploaded by the CI
``dist-smoke`` job) and ``benchmarks/results/dist_queue.txt``.

Run via pytest or directly::

    PYTHONPATH=src python -m pytest benchmarks/bench_dist_queue.py -q
    PYTHONPATH=src python benchmarks/bench_dist_queue.py [--quick]
"""

import argparse
import json
import os
import re
import signal
import subprocess
import sys
import threading
import time
from pathlib import Path

import repro
from repro import RunOptions, Study, charging_scenario
from repro.cache.store import open_store
from repro.dist.queue import open_queue
from repro.io.report import format_table

JSON_PATH = Path("BENCH_dist.json")

#: 8 x 8 = 64 candidates around the paper's 70 Hz operating point
GRID = {
    "excitation_frequency_hz": [64.0 + i for i in range(8)],
    "excitation_amplitude_ms2": [0.30 + 0.05 * i for i in range(8)],
}

#: results in the store before the SIGKILL fires (far from done at 64)
KILL_AFTER_RESULTS = 4

#: worker lease length: how long the dead worker's candidate stays stuck
LEASE_S = 2.0

_ANNOUNCE = re.compile(r"kv://[0-9A-Za-z_.\-]+:\d+")


def _cli(args, **popen_kwargs):
    """Spawn one `repro <args...>` CLI subprocess (module path, no install)."""
    env = dict(os.environ)
    package_root = str(Path(repro.__file__).resolve().parents[1])
    env["PYTHONPATH"] = os.pathsep.join(
        part for part in (package_root, env.get("PYTHONPATH")) if part
    )
    command = [
        sys.executable,
        "-c",
        "import sys; from repro.cli import main; sys.exit(main(sys.argv[1:]))",
        *args,
    ]
    return subprocess.Popen(command, env=env, **popen_kwargs)


def _start_kv_server(timeout_s: float = 30.0):
    server = _cli(
        ["kv-serve", "--port", "0"],
        stdout=subprocess.PIPE,
        stderr=subprocess.STDOUT,
        text=True,
    )
    deadline = time.monotonic() + timeout_s
    while time.monotonic() < deadline:
        line = server.stdout.readline()
        if not line and server.poll() is not None:
            break
        match = _ANNOUNCE.search(line or "")
        if match:
            return server, match.group(0)
    server.kill()
    raise RuntimeError("kv-serve never announced its address")


def _start_worker(url: str, worker_id: str):
    return _cli(
        [
            "worker",
            url,
            "--worker-id",
            worker_id,
            "--lease-s",
            f"{LEASE_S:g}",
            "--poll-s",
            "0.05",
        ],
        stdout=subprocess.DEVNULL,
        stderr=subprocess.DEVNULL,
    )


def _study(duration_s: float, options: RunOptions):
    return (
        Study.scenario(charging_scenario(duration_s=duration_s))
        .options(options)
        .sweep(GRID)
    )


def run_benchmark(*, duration_s: float = 0.05):
    os.environ.setdefault("REPRO_QUEUE_TIMEOUT_S", "600")
    n_candidates = len(GRID["excitation_frequency_hz"]) * len(
        GRID["excitation_amplitude_ms2"]
    )

    t0 = time.perf_counter()
    reference = _study(duration_s, RunOptions(backend="process", n_workers=1)).run()
    t_process = time.perf_counter() - t0

    server = workers = None
    kill_result = {}
    try:
        server, url = _start_kv_server()
        workers = [_start_worker(url, "w1"), _start_worker(url, "w2")]
        store = open_store(store_url=url)

        def kill_one_worker_mid_sweep():
            deadline = time.monotonic() + 300.0
            while time.monotonic() < deadline:
                if store.stats()["n_points"] >= KILL_AFTER_RESULTS:
                    workers[0].send_signal(signal.SIGKILL)
                    workers[0].wait(timeout=30.0)
                    kill_result["results_before_kill"] = store.stats()["n_points"]
                    return
                time.sleep(0.05)

        killer = threading.Thread(target=kill_one_worker_mid_sweep, daemon=True)
        killer.start()

        t0 = time.perf_counter()
        queued = _study(
            duration_s, RunOptions.queue(url, lease_timeout_s=LEASE_S)
        ).run()
        t_queue = time.perf_counter() - t0

        killer.join(timeout=30.0)
        queue_stats = open_queue(url).stats()
    finally:
        for proc in workers or []:
            if proc.poll() is None:
                proc.kill()
        if server is not None and server.poll() is None:
            server.kill()

    assert "results_before_kill" in kill_result, (
        "the SIGKILL never fired: the sweep finished before "
        f"{KILL_AFTER_RESULTS} results appeared — slow the candidates down"
    )
    assert workers[0].returncode == -signal.SIGKILL

    def table(result):
        return sorted(
            (
                point.parameters["excitation_frequency_hz"],
                point.parameters["excitation_amplitude_ms2"],
                point.score,
            )
            for point in result.points
        )

    assert len(queued.points) == n_candidates
    assert table(queued) == table(reference), (
        "queue-backend scores diverged from the process backend"
    )
    assert queued.best().parameters == reference.best().parameters

    data = {
        "benchmark": "dist_queue",
        "n_candidates": n_candidates,
        "duration_s": duration_s,
        "process_wall_s": t_process,
        "queue_wall_s": t_queue,
        "n_workers": 2,
        "worker_sigkilled": True,
        "results_before_kill": kill_result["results_before_kill"],
        "lease_timeout_s": LEASE_S,
        "queue_tasks_done": queue_stats.get("done"),
        "queue_tasks_failed": queue_stats.get("failed"),
        "scores_identical_to_process": True,
        "winner": dict(queued.best().parameters),
    }
    JSON_PATH.write_text(json.dumps(data, indent=2) + "\n")

    report = format_table(
        ["run", "wall [s]", "candidates", "notes"],
        [
            ["process (reference)", f"{t_process:.3f}", str(n_candidates), "-"],
            [
                "queue, 2 workers",
                f"{t_queue:.3f}",
                str(n_candidates),
                f"w1 SIGKILLed after {kill_result['results_before_kill']} results",
            ],
        ],
        title=(
            f"distributed queue sweep — {n_candidates} candidates x "
            f"{duration_s:g} s over kv-serve; one worker killed mid-sweep, "
            "scores identical to the process backend"
        ),
    )
    return report, data


def test_dist_queue_fault_tolerance(report_writer):
    report, _data = run_benchmark()
    report_writer("dist_queue", report)


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--quick",
        action="store_true",
        help=(
            "shorter per-candidate simulations (CI smoke); the grid stays "
            "at 64 candidates and the kill/reclaim/equivalence assertions "
            "are unchanged"
        ),
    )
    args = parser.parse_args()
    report, _data = run_benchmark(duration_s=0.02 if args.quick else 0.05)
    print(report)
    print(f"\nwritten: {JSON_PATH}")


if __name__ == "__main__":
    main()
