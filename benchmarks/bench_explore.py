"""Exploration budget: successive halving vs the dense tuning grid.

PR 6's acceptance number: on the scenario-1 tuning grid (8 initial
tuning points x 2 excitation amplitudes = 16 candidates) successive
halving must recover the **same winner** as the dense grid while
spending **at most 50 %** of the dense grid's simulation work.  Work is
measured in candidate-equivalents (a candidate simulated at horizon
``h`` costs ``h``), exactly what ``ExplorationResult.work_fraction``
reports: the eta=3 schedule ``16 @ 1/9 -> 6 @ 1/3 -> 2 @ 1.0`` costs
5.78 equivalents, ~36 % of the 16-candidate grid.

The winner comparison is honest: the halving run's final round re-scores
its survivors at full horizon, so the winning score is the dense grid's
exact float, not a short-horizon estimate.

Writes ``BENCH_explore.json`` (machine-readable, tracked across PRs and
uploaded by the CI ``explore-smoke`` job) and
``benchmarks/results/explore_halving.txt``.

Run via pytest or directly::

    PYTHONPATH=src python -m pytest benchmarks/bench_explore.py -q
    PYTHONPATH=src python benchmarks/bench_explore.py [--quick]
"""

import argparse
import json
import time
from pathlib import Path

from repro import RunOptions, Study, scenario_1
from repro.io.report import format_table

#: required ceiling on halving's work fraction (the PR-6 acceptance number)
MAX_WORK_FRACTION = 0.5

JSON_PATH = Path("BENCH_explore.json")

#: 8 x 2 = 16 tuning candidates around the paper's 70 -> 71 Hz shift
GRID = {
    "initial_tuned_frequency_hz": [67.0, 68.0, 69.0, 69.5, 70.0, 70.5, 71.0, 72.0],
    "excitation_amplitude_ms2": [0.4, 0.59],
}


def _study(duration_s: float, options: RunOptions):
    return (
        Study.scenario(scenario_1(duration_s=duration_s, shift_time_s=0.2))
        .options(options)
        .sweep(GRID)
    )


def run_benchmark(*, duration_s: float = 1.5, n_workers: int = 2):
    n_candidates = len(GRID["initial_tuned_frequency_hz"]) * len(
        GRID["excitation_amplitude_ms2"]
    )
    base = RunOptions(n_workers=n_workers)

    t0 = time.perf_counter()
    dense = _study(duration_s, base).run()
    t_dense = time.perf_counter() - t0

    t0 = time.perf_counter()
    halved = _study(duration_s, base.replace(explore="halving")).run()
    t_halving = time.perf_counter() - t0

    dense_best = dense.best()
    halved_best = halved.best()
    assert dict(halved_best.parameters) == dict(dense_best.parameters), (
        f"halving picked {dict(halved_best.parameters)} but the dense grid's "
        f"winner is {dict(dense_best.parameters)}"
    )
    assert halved_best.score == dense_best.score, (
        "the halving winner's full-horizon score must be the dense grid's "
        f"exact float: {halved_best.score!r} != {dense_best.score!r}"
    )
    assert halved.work_fraction <= MAX_WORK_FRACTION, (
        f"halving spent {halved.work_fraction:.1%} of the dense grid's work; "
        f"the acceptance bound is {MAX_WORK_FRACTION:.0%}"
    )

    schedule = " -> ".join(
        f"{len(record.points)} @ {record.horizon:.3g}x"
        for record in halved.rounds
    )
    data = {
        "benchmark": "explore_halving",
        "n_candidates": n_candidates,
        "duration_s": duration_s,
        "n_workers": n_workers,
        "dense_wall_s": t_dense,
        "halving_wall_s": t_halving,
        "halving_schedule": schedule,
        "halving_work_units": halved.run.work_units,
        "work_fraction": halved.work_fraction,
        "max_work_fraction": MAX_WORK_FRACTION,
        "winner": {
            name: float(value)
            for name, value in dense_best.parameters.items()
        },
        "winner_recovered": True,
        "winner_score_identical": True,
        "best_score": dense_best.score,
    }
    JSON_PATH.write_text(json.dumps(data, indent=2) + "\n")

    report = format_table(
        ["search", "wall [s]", "work [cand-eq]", "winner"],
        [
            [
                "dense grid",
                f"{t_dense:.2f}",
                f"{float(n_candidates):.2f}",
                f"{dense_best.parameters['initial_tuned_frequency_hz']:g} Hz",
            ],
            [
                f"halving ({schedule})",
                f"{t_halving:.2f}",
                f"{halved.run.work_units:.2f}",
                f"{halved_best.parameters['initial_tuned_frequency_hz']:g} Hz",
            ],
        ],
        title=(
            f"scenario-1 tuning search — {n_candidates} candidates x "
            f"{duration_s:g} s, halving spends "
            f"{halved.work_fraction:.0%} of the dense work "
            f"(required <= {MAX_WORK_FRACTION:.0%}), same winner"
        ),
    )
    return report, data


def test_explore_halving_budget(report_writer):
    report, _data = run_benchmark()
    report_writer("explore_halving", report)


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--quick",
        action="store_true",
        help=(
            "shorter per-candidate simulations (CI smoke); the grid stays "
            "at 16 candidates, the schedule and the <= 50 % work bound are "
            "unchanged — only the wall-clock shrinks"
        ),
    )
    args = parser.parse_args()
    report, _data = run_benchmark(duration_s=0.75 if args.quick else 1.5)
    print(report)
    print(f"\nwritten: {JSON_PATH}")


if __name__ == "__main__":
    main()
