"""Shared helpers for the benchmark harness.

Every benchmark prints the table/figure data it reproduces and also writes
it to ``benchmarks/results/<name>.txt`` so the numbers survive pytest's
output capturing and can be copied into EXPERIMENTS.md.
"""

from pathlib import Path

import pytest

RESULTS_DIR = Path(__file__).resolve().parent / "results"


@pytest.fixture
def report_writer():
    """Return a callable ``write(name, text)`` that prints and persists."""

    def write(name: str, text: str) -> Path:
        RESULTS_DIR.mkdir(parents=True, exist_ok=True)
        path = RESULTS_DIR / f"{name}.txt"
        path.write_text(text + "\n")
        print()
        print(text)
        return path

    return write
