"""Fig. 8(b) and Fig. 9: supercapacitor voltage, simulation vs "measurement".

The paper overlays the simulated supercapacitor voltage on measurements of
the physical harvester for the 1 Hz (Fig. 8b) and 14 Hz (Fig. 9) tuning
scenarios and observes close correlation.  Without hardware, the
measurement stand-in is the same nonlinear model integrated by scipy at
tight tolerance with a small parasitic-leakage perturbation (the paper
attributes the residual mismatch to exactly such unmodelled losses).

The benchmark reports the waveform comparison metrics for both scenarios.
"""

import pytest

from repro.analysis.waveforms import compare_traces
from repro.baselines.reference import ReferenceSolverSettings
from repro import Study
from repro.harvester.scenarios import scenario_1, scenario_2
from repro.io.report import format_table

#: shorter windows than the power benchmark: the reference (scipy) solver is
#: itself expensive, and the waveform-agreement claim does not need a long run
DURATIONS = {"fig8b_scenario1": 1.2, "fig9_scenario2": 1.5}

_rows = []


def _scenario(name):
    if name == "fig8b_scenario1":
        return scenario_1(duration_s=DURATIONS[name], shift_time_s=0.3)
    return scenario_2(duration_s=DURATIONS[name], shift_time_s=0.3)


@pytest.mark.parametrize("name", ["fig8b_scenario1", "fig9_scenario2"])
def test_supercapacitor_voltage_matches_reference(benchmark, name):
    scenario = _scenario(name)
    proposed = benchmark.pedantic(
        lambda: Study.scenario(scenario).run().result, rounds=1, iterations=1
    )
    reference = Study.scenario(_scenario(name)).solver(
        "reference",
        settings=ReferenceSolverSettings(
            rtol=1e-7,
            atol=1e-9,
            max_step=1e-3,
            record_interval=2e-3,
            parasitic_conductance_s=2e-6,
        ),
    ).run()
    comparison = compare_traces(reference["storage_voltage"], proposed["storage_voltage"])
    _rows.append(
        [
            name,
            f"{comparison.normalised_rms_error * 100:.2f} %",
            f"{comparison.max_absolute_error * 1e3:.1f} mV",
            f"{comparison.correlation:.4f}",
        ]
    )
    # "close correlation" shape: small normalised error, high correlation
    assert comparison.normalised_rms_error < 0.10
    assert comparison.correlation > 0.9


def test_zz_report_fig8b_fig9(benchmark, report_writer):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    assert len(_rows) == 2
    text = format_table(
        ["figure / scenario", "NRMSE", "max |error|", "correlation"],
        _rows,
        title="Fig. 8(b) / Fig. 9 — supercapacitor voltage: fast solver vs measurement stand-in",
    )
    text += (
        "\npaper: simulation and experiment 'correlate well'; residual differences "
        "attributed to leakage and parasitic losses (modelled here as the reference's "
        "parasitic conductance)."
    )
    report_writer("fig8b_fig9_supercap", text)
