"""Warm-cache speed-up: a 64-candidate sweep grid, cold vs warm.

PR 5's acceptance number: with ``RunOptions(cache="readwrite")`` the
second (warm) execution of a 64-candidate sweep grid must complete at
least **10x** faster than the cold run, because every per-candidate
score is served from the content-addressed result store instead of being
re-simulated — and the warm scores must be *identical* to both the cold
run and a cache-off run (cache hits never change results, they only skip
work).

Writes ``BENCH_cache.json`` (machine-readable, tracked across PRs and
uploaded by the CI ``cli-smoke`` job) and
``benchmarks/results/cache_warm.txt``.

Run via pytest or directly::

    PYTHONPATH=src python -m pytest benchmarks/bench_cache_warm.py -q
    PYTHONPATH=src python benchmarks/bench_cache_warm.py [--quick]
"""

import argparse
import json
import tempfile
import time
from pathlib import Path

from repro import RunOptions, Study, charging_scenario
from repro.cache import ResultStore
from repro.io.report import format_table

#: required cold/warm wall-clock ratio (the PR-5 acceptance number)
MIN_WARM_SPEEDUP = 10.0

JSON_PATH = Path("BENCH_cache.json")

#: 8 x 8 = 64 candidates around the paper's 70 Hz operating point
GRID = {
    "excitation_frequency_hz": [64.0 + i for i in range(8)],
    "excitation_amplitude_ms2": [0.30 + 0.05 * i for i in range(8)],
}


def _study(duration_s: float, options: RunOptions):
    return (
        Study.scenario(charging_scenario(duration_s=duration_s))
        .options(options)
        .sweep(GRID)
    )


def run_benchmark(*, duration_s: float = 0.05, assert_speedup: bool = True):
    n_candidates = len(GRID["excitation_frequency_hz"]) * len(
        GRID["excitation_amplitude_ms2"]
    )
    with tempfile.TemporaryDirectory(prefix="repro-bench-cache") as cache_dir:
        cached = RunOptions(cache="readwrite", cache_dir=cache_dir)

        # reference run with the cache off: the scores hits must reproduce
        reference = _study(duration_s, RunOptions()).run()

        t0 = time.perf_counter()
        cold = _study(duration_s, cached).run()
        t_cold = time.perf_counter() - t0

        t0 = time.perf_counter()
        warm = _study(duration_s, cached).run()
        t_warm = time.perf_counter() - t0

        store_stats = ResultStore(cache_dir).stats()

    assert cold.engine_info.n_cache_hits == 0
    assert warm.engine_info.n_cache_hits == n_candidates
    reference_scores = [point.score for point in reference.points]
    assert [point.score for point in cold.points] == reference_scores, (
        "cold readwrite run diverged from the cache-off run"
    )
    assert [point.score for point in warm.points] == reference_scores, (
        "warm cache-served scores diverged from the cache-off run"
    )

    speedup = t_cold / t_warm if t_warm > 0 else float("inf")
    data = {
        "benchmark": "cache_warm",
        "n_candidates": n_candidates,
        "duration_s": duration_s,
        "cold_wall_s": t_cold,
        "warm_wall_s": t_warm,
        "warm_speedup": speedup,
        "min_required_speedup": MIN_WARM_SPEEDUP,
        "warm_cache_hits": warm.engine_info.n_cache_hits,
        "scores_identical_to_cache_off": True,
        "store_entries": store_stats["n_entries"],
        "store_bytes": store_stats["total_bytes"],
    }
    JSON_PATH.write_text(json.dumps(data, indent=2) + "\n")

    report = format_table(
        ["run", "wall [s]", "cache hits"],
        [
            ["cache off (reference)", "-", "-"],
            ["cold readwrite", f"{t_cold:.3f}", "0"],
            ["warm readwrite", f"{t_warm:.3f}", f"{n_candidates}"],
        ],
        title=(
            f"warm-cache sweep — {n_candidates} candidates x {duration_s:g} s, "
            f"warm speed-up {speedup:.0f}x "
            f"(required >= {MIN_WARM_SPEEDUP:.0f}x), scores identical"
        ),
    )

    if assert_speedup:
        assert speedup >= MIN_WARM_SPEEDUP, (
            f"warm cache rerun is only {speedup:.1f}x faster than cold; "
            f"the acceptance bound is {MIN_WARM_SPEEDUP:.0f}x"
        )
    return report, data


def test_cache_warm_speedup(report_writer):
    report, _data = run_benchmark()
    report_writer("cache_warm", report)


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--quick",
        action="store_true",
        help=(
            "shorter per-candidate simulations (CI smoke); the grid stays "
            "at 64 candidates and the 10x bound is still asserted — warm "
            "runs are pure store reads, so the ratio holds even for small "
            "cold runs"
        ),
    )
    args = parser.parse_args()
    report, data = run_benchmark(duration_s=0.02 if args.quick else 0.05)
    print(report)
    print(f"\nwritten: {JSON_PATH}")


if __name__ == "__main__":
    main()
